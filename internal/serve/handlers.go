package serve

import (
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"strconv"
	"strings"

	"teva/internal/obs"
)

// writeSnapshot renders a registry's deterministic snapshot: Prometheus
// text with ?format=prom, the canonical JSON layout otherwise.
func writeSnapshot(w http.ResponseWriter, r *http.Request, reg *obs.Registry) {
	snap := reg.Snapshot()
	if r.URL.Query().Get("format") == "prom" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write(snap.PrometheusText())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(snap.JSON())
}

// routes wires the API. All state-reading endpoints work on any job a
// client can name; the job IDs are content addresses, so "the job for
// this spec" is discoverable by resubmitting the spec (idempotent).
func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metricsz", s.handleMetricsz)
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/jobs/{id}/metrics", s.handleJobMetrics)
	s.mux.HandleFunc("GET /v1/jobs/{id}/csv", s.handleCSVList)
	s.mux.HandleFunc("GET /v1/jobs/{id}/csv/{name}", s.handleCSV)
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// writeJSON writes v as a JSON response. Marshaling the typed payloads
// here cannot fail; a failure is a programming error surfaced as 500.
func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"internal encoding failure"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}

type errorBody struct {
	Error string `json:"error"`
}

type jobSummary struct {
	ID    string `json:"id"`
	State State  `json:"state"`
}

type submitBody struct {
	ID      string `json:"id"`
	State   State  `json:"state"`
	Deduped bool   `json:"deduped"`
}

type statusBody struct {
	ID       string        `json:"id"`
	State    State         `json:"state"`
	Error    string        `json:"error,omitempty"`
	Spec     Spec          `json:"spec"`
	Events   int           `json:"events"`
	Progress *progressBody `json:"progress,omitempty"`
}

type progressBody struct {
	CellsDone   int64 `json:"cells_done"`
	CellsTotal  int64 `json:"cells_total"`
	CellsCached int64 `json:"cells_cached"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.Draining() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": status})
}

func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	writeSnapshot(w, r, s.cfg.Metrics)
}

// clientID names the submitting client for the fairness scheduler: the
// X-Teva-Client header when the caller sets one (lets jobs behind one
// proxy schedule separately), otherwise the peer host. The identity is
// purely advisory — it orders slot grants, never results.
func clientID(r *http.Request) string {
	if c := r.Header.Get("X-Teva-Client"); c != "" {
		return c
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	sp, err := DecodeSpec(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	j, deduped, err := s.SubmitAs(sp, clientID(r))
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, ErrDraining) {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, errorBody{Error: err.Error()})
		return
	}
	status := http.StatusAccepted
	if deduped {
		status = http.StatusOK
	}
	writeJSON(w, status, submitBody{ID: j.ID, State: j.State(), Deduped: deduped})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs()
	out := make([]jobSummary, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, jobSummary{ID: j.ID, State: j.State()})
	}
	writeJSON(w, http.StatusOK, map[string][]jobSummary{"jobs": out})
}

// lookup resolves {id}, writing the 404 itself when absent.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *Job {
	j := s.Job(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job " + r.PathValue("id")})
	}
	return j
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	body := statusBody{
		ID:     j.ID,
		State:  j.State(),
		Error:  j.Err(),
		Spec:   j.Spec,
		Events: j.EventCount(),
	}
	if p, ok := j.Progress(); ok {
		body.Progress = &progressBody{
			CellsDone:   p.CellsDone,
			CellsTotal:  p.CellsTotal,
			CellsCached: p.CellsCached,
		}
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	j.Cancel()
	writeJSON(w, http.StatusAccepted, jobSummary{ID: j.ID, State: j.State()})
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	if st := j.State(); st != StateDone {
		writeJSON(w, http.StatusConflict, errorBody{Error: "job not done (state " + string(st) + ")"})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(j.Result())
}

func (s *Server) handleJobMetrics(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	writeSnapshot(w, r, j.reg)
}

func (s *Server) handleCSVList(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	if st := j.State(); st != StateDone {
		writeJSON(w, http.StatusConflict, errorBody{Error: "job not done (state " + string(st) + ")"})
		return
	}
	writeJSON(w, http.StatusOK, map[string][]string{"csv": j.CSVNames()})
}

func (s *Server) handleCSV(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	data := j.CSV(r.PathValue("name"))
	if data == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no CSV " + r.PathValue("name")})
		return
	}
	w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	w.Write(data)
}

// handleEvents streams the job's event log: Server-Sent Events when the
// client asks for text/event-stream, NDJSON otherwise. ?from=N resumes
// from sequence N (every event carries its seq, so a dropped connection
// resumes loss-free). The stream ends once the job is terminal and the
// log is fully replayed; the job itself is never affected by the
// subscriber going away.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	from := 0
	if q := r.URL.Query().Get("from"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad from parameter"})
			return
		}
		from = n
	}
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	for {
		evs, more, terminal := j.eventsSince(from)
		for _, ev := range evs {
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			if sse {
				w.Write([]byte("id: " + strconv.Itoa(ev.Seq) + "\nevent: " + ev.Type + "\ndata: "))
				w.Write(data)
				w.Write([]byte("\n\n"))
			} else {
				w.Write(data)
				w.Write([]byte("\n"))
			}
			from = ev.Seq + 1
		}
		if flusher != nil {
			flusher.Flush()
		}
		// A terminal state is flipped atomically with the final event, so
		// seeing it means the log just replayed is complete.
		if terminal {
			return
		}
		select {
		case <-more:
		case <-r.Context().Done():
			return
		}
	}
}
