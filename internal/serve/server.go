package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"teva/internal/artifact"
	"teva/internal/core"
	"teva/internal/experiments"
	"teva/internal/guard"
	"teva/internal/obs"
)

// Metric names published by the serving layer on the server registry.
// Deduped counts submissions joined onto an existing job (the
// single-flight contract: N identical submissions, one computation);
// rejected counts submissions refused because the server was draining.
const (
	MetricJobsSubmitted = "serve.jobs_submitted"
	MetricJobsDeduped   = "serve.jobs_deduped"
	MetricJobsCompleted = "serve.jobs_completed"
	MetricJobsFailed    = "serve.jobs_failed"
	MetricJobsCanceled  = "serve.jobs_canceled"
	MetricJobsRejected  = "serve.jobs_rejected"
)

// ErrDraining rejects submissions once a drain has begun.
var ErrDraining = errors.New("serve: server is draining; not accepting new jobs")

// Config parameterizes a Server.
type Config struct {
	// Artifacts, when non-nil, is the shared artifact store every job
	// caches into — the substrate of cross-restart resume and of
	// cross-job cell reuse. A nil store disables persistence.
	Artifacts *artifact.Store
	// Metrics, when non-nil, receives the serve.* counters. Per-job
	// simulation metrics live on each job's own registry, not here, so
	// concurrent jobs never mix counts.
	Metrics *obs.Registry
	// Clock feeds the per-job registries' phase timers (nil: phases
	// record zero durations; all counters still work).
	Clock obs.Clock
	// MaxConcurrent bounds concurrently executing jobs (the simulation
	// inside each job is already parallel); 0 means 1.
	MaxConcurrent int
	// SnapshotEvery is the progress/snapshot event period (0: 2s).
	SnapshotEvery time.Duration
	// BaseContext roots every job's run context (nil: Background). Job
	// contexts are detached from any request — a client disconnect
	// never cancels shared work.
	BaseContext context.Context
}

// Server owns the job table and the HTTP API over it. Jobs are
// content-addressed by their spec (Spec.JobID), which is what makes
// submission idempotent: concurrent identical submissions — or the same
// curl re-run after a restart against a warm artifact store — share one
// computation.
type Server struct {
	cfg   Config
	base  context.Context
	clock obs.Clock
	mux   *http.ServeMux
	sched *fairSched

	mu       sync.Mutex
	jobs     map[string]*Job // by job ID (latest attempt wins)
	byKey    map[string]*Job // by canonical spec key
	draining bool

	drainCh chan struct{}
	wg      sync.WaitGroup
	sink    guard.Sink

	mSubmitted, mDeduped, mCompleted, mFailed, mCanceled, mRejected *obs.Counter
}

// New builds a server. Call Handler for its http.Handler, Drain on the
// first shutdown signal, and Wait before exiting.
func New(cfg Config) *Server {
	workers := cfg.MaxConcurrent
	if workers <= 0 {
		workers = 1
	}
	base := cfg.BaseContext
	if base == nil {
		base = context.Background()
	}
	s := &Server{
		cfg:        cfg,
		base:       base,
		clock:      cfg.Clock,
		sched:      newFairSched(workers),
		jobs:       make(map[string]*Job),
		byKey:      make(map[string]*Job),
		drainCh:    make(chan struct{}),
		mSubmitted: cfg.Metrics.Counter(MetricJobsSubmitted),
		mDeduped:   cfg.Metrics.Counter(MetricJobsDeduped),
		mCompleted: cfg.Metrics.Counter(MetricJobsCompleted),
		mFailed:    cfg.Metrics.Counter(MetricJobsFailed),
		mCanceled:  cfg.Metrics.Counter(MetricJobsCanceled),
		mRejected:  cfg.Metrics.Counter(MetricJobsRejected),
	}
	s.mux = http.NewServeMux()
	s.routes()
	return s
}

// Submit accepts a validated spec, returning the job handling it and
// whether the submission joined an existing one. Identical in-flight or
// completed specs dedupe onto the live job; a failed or canceled job is
// retried with a fresh attempt under the same content-addressed ID.
func (s *Server) Submit(sp Spec) (*Job, bool, error) { return s.SubmitAs(sp, "") }

// SubmitAs is Submit attributed to a client, which is the unit of the
// run-slot fairness scheduler: when jobs queue behind MaxConcurrent,
// free slots rotate round-robin across clients instead of draining one
// client's backlog first. The client string is advisory (any stable
// identifier works; the HTTP layer uses a header or the peer address)
// and never affects job identity or results — only queueing order.
func (s *Server) SubmitAs(sp Spec, client string) (*Job, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.mRejected.Inc()
		return nil, false, ErrDraining
	}
	key := sp.Key()
	if j, ok := s.byKey[key]; ok {
		st := j.State()
		if st != StateFailed && st != StateCanceled {
			s.mDeduped.Inc()
			return j, true, nil
		}
	}
	j := newJob(sp, obs.NewRegistry(s.clock))
	s.jobs[j.ID] = j
	s.byKey[key] = j
	s.mSubmitted.Inc()
	guard.Go(&s.wg, &s.sink, "serve job "+j.ID, func() error {
		s.runJob(j, client)
		return nil
	})
	return j, false, nil
}

// Job looks a job up by ID.
func (s *Server) Job(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// Jobs returns every job, sorted by ID.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Draining reports whether a drain has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain begins a graceful shutdown: new submissions are rejected,
// queued jobs are canceled, and running jobs stop dispatching new cells
// while in-flight cells finish and land in the artifact cache — the
// serving-layer face of the CLI's first-SIGINT behavior. Idempotent.
func (s *Server) Drain() {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return
	}
	s.draining = true
	close(s.drainCh)
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].ID < jobs[b].ID })
	s.mu.Unlock()
	for _, j := range jobs {
		j.Cancel()
	}
}

// Wait blocks until every job goroutine has finished (after Drain, that
// means every in-flight cell has been flushed to the cache).
func (s *Server) Wait() { s.wg.Wait() }

// runJob owns one job attempt end to end: slot acquisition, substrate
// build, suite run, CSV slurp, terminal state. It deliberately takes no
// context parameter — the job's context is rooted in the server's
// BaseContext (plus the spec's own max_duration), never in a request,
// so a disconnecting client cannot cancel work other clients share.
func (s *Server) runJob(j *Job, client string) {
	if !s.sched.Acquire(client, s.drainCh) {
		s.mCanceled.Inc()
		j.finish(StateCanceled, "server draining before job start", nil, nil, nil)
		return
	}
	defer s.sched.Release()
	if j.Canceled() {
		s.mCanceled.Inc()
		j.finish(StateCanceled, "canceled before start", nil, nil, nil)
		return
	}
	err := guard.Recovered("serve job "+j.ID, func() error { return s.execute(j) })
	switch {
	case err == nil:
		s.mCompleted.Inc()
	case experiments.IsInterrupt(err):
		s.mCanceled.Inc()
		j.finish(StateCanceled, err.Error(), nil, nil, nil)
	default:
		s.mFailed.Inc()
		j.finish(StateFailed, err.Error(), nil, nil, nil)
	}
}

// execute runs the job's suite and, on success, moves it to Done with
// the deterministic report and CSV exports attached.
func (s *Server) execute(j *Job) error {
	opts, cfg, err := j.Spec.Effective()
	if err != nil {
		return err
	}
	cfg.Artifacts = s.cfg.Artifacts
	cfg.Metrics = j.reg
	maxDur, err := j.Spec.maxDuration()
	if err != nil {
		return err
	}
	ctx := s.base
	if maxDur > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, maxDur)
		defer cancel()
	}
	f, err := core.New(cfg)
	if err != nil {
		return err
	}
	env := experiments.NewEnvContext(ctx, f, opts)
	if !j.attach(env) {
		return experiments.ErrDrained
	}

	// Periodic progress + obs-snapshot events while the suite runs.
	// Event content is observational only; the determinism contract
	// covers the /result bytes, not the event stream.
	every := s.cfg.SnapshotEvery
	if every <= 0 {
		every = 2 * time.Second
	}
	stop := make(chan struct{})
	var tickWG sync.WaitGroup
	guard.Go(&tickWG, &s.sink, "serve progress "+j.ID, func() error {
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return nil
			case <-tick.C:
				p := env.Progress()
				j.post(Event{Type: "progress",
					CellsDone: p.CellsDone, CellsTotal: p.CellsTotal, CellsCached: p.CellsCached})
				j.post(Event{Type: "snapshot", Snapshot: json.RawMessage(j.reg.Snapshot().JSON())})
			}
		}
	})
	defer func() {
		close(stop)
		tickWG.Wait()
	}()

	csvDir, err := os.MkdirTemp("", "teva-serve-csv-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(csvDir)

	var report bytes.Buffer
	suiteErr := experiments.RunSuite(env, experiments.SuiteConfig{
		Experiments: j.Spec.Experiments,
		CornerSpec:  j.Spec.Corners,
		CSVDir:      csvDir,
		OnStart: func(name string) {
			j.post(Event{Type: "start", Experiment: name})
		},
		OnExperiment: func(name string, err error) {
			ev := Event{Type: "experiment", Experiment: name}
			if err != nil {
				ev.Error = err.Error()
			}
			j.post(ev)
		},
	}, &report)
	if suiteErr != nil {
		return suiteErr
	}
	csv, names, err := slurpCSVs(csvDir)
	if err != nil {
		return err
	}
	p := env.Progress()
	j.post(Event{Type: "progress",
		CellsDone: p.CellsDone, CellsTotal: p.CellsTotal, CellsCached: p.CellsCached})
	j.post(Event{Type: "snapshot", Snapshot: json.RawMessage(j.reg.Snapshot().JSON())})
	j.finish(StateDone, "", report.Bytes(), csv, names)
	return nil
}

// slurpCSVs loads every CSV the suite exported into memory, names in
// the (sorted) directory order, so the job outlives its scratch dir.
func slurpCSVs(dir string) (map[string][]byte, []string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	csv := make(map[string][]byte, len(entries))
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, nil, err
		}
		csv[e.Name()] = data
		names = append(names, e.Name())
	}
	return csv, names, nil
}
