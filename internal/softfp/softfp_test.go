package softfp

import (
	"math"
	"testing"
	"testing/quick"

	"teva/internal/prng"
)

// isDenorm64 reports whether the encoding is a nonzero denormal.
func isDenorm64(bits uint64) bool {
	return bits&0x7ff0000000000000 == 0 && bits&0xfffffffffffff != 0
}

func isDenorm32(bits uint32) bool {
	return bits&0x7f800000 == 0 && bits&0x7fffff != 0
}

// check64 compares a softfp binary64 result against the native value,
// treating any-NaN-vs-any-NaN as equal and skipping cases where FTZ
// legitimately deviates (denormal inputs or denormal native result).
func check64(t *testing.T, op string, a, b float64, got uint64, want float64) {
	t.Helper()
	if isDenorm64(math.Float64bits(a)) || isDenorm64(math.Float64bits(b)) ||
		isDenorm64(math.Float64bits(want)) {
		return
	}
	wb := math.Float64bits(want)
	if Binary64.IsNaNBits(got) && Binary64.IsNaNBits(wb) {
		return
	}
	if got != wb {
		t.Fatalf("%s(%g, %g) = %016x, want %016x (%g)", op, a, b, got, wb, want)
	}
}

func check32(t *testing.T, op string, a, b float32, got uint64, want float32) {
	t.Helper()
	if isDenorm32(math.Float32bits(a)) || isDenorm32(math.Float32bits(b)) ||
		isDenorm32(math.Float32bits(want)) {
		return
	}
	wb := uint64(math.Float32bits(want))
	if Binary32.IsNaNBits(got) && Binary32.IsNaNBits(wb) {
		return
	}
	if got != wb {
		t.Fatalf("%s(%g, %g) = %08x, want %08x (%g)", op, a, b, got, wb, want)
	}
}

// interestingF64 yields a stream mixing random bit patterns with directed
// special values and magnitude-correlated pairs (to exercise alignment and
// cancellation).
func interestingF64(src *prng.Source) float64 {
	switch src.Intn(10) {
	case 0:
		specials := []float64{0, math.Copysign(0, -1), 1, -1, 2, 0.5,
			math.Inf(1), math.Inf(-1), math.NaN(), math.MaxFloat64,
			-math.MaxFloat64, math.SmallestNonzeroFloat64, 1e-300, 1e300, math.Pi}
		return specials[src.Intn(len(specials))]
	case 1, 2:
		// Small-exponent-difference values: heavy cancellation.
		return (src.Float64() - 0.5) * 4
	case 3:
		return math.Float64frombits(src.Uint64() & 0x800fffffffffffff) // denormal/zero
	default:
		return math.Float64frombits(src.Uint64())
	}
}

func interestingF32(src *prng.Source) float32 {
	switch src.Intn(8) {
	case 0:
		specials := []float32{0, float32(math.Copysign(0, -1)), 1, -1,
			float32(math.Inf(1)), float32(math.Inf(-1)), float32(math.NaN()),
			math.MaxFloat32, math.SmallestNonzeroFloat32}
		return specials[src.Intn(len(specials))]
	case 1, 2:
		return (float32(src.Float64()) - 0.5) * 4
	default:
		return math.Float32frombits(src.Uint32())
	}
}

func TestAdd64AgainstNative(t *testing.T) {
	src := prng.New(101)
	for i := 0; i < 200000; i++ {
		a, b := interestingF64(src), interestingF64(src)
		got, _ := Binary64.Add(math.Float64bits(a), math.Float64bits(b))
		check64(t, "add", a, b, got, a+b)
	}
}

func TestSub64AgainstNative(t *testing.T) {
	src := prng.New(102)
	for i := 0; i < 200000; i++ {
		a, b := interestingF64(src), interestingF64(src)
		got, _ := Binary64.Sub(math.Float64bits(a), math.Float64bits(b))
		check64(t, "sub", a, b, got, a-b)
	}
}

func TestMul64AgainstNative(t *testing.T) {
	src := prng.New(103)
	for i := 0; i < 200000; i++ {
		a, b := interestingF64(src), interestingF64(src)
		got, _ := Binary64.Mul(math.Float64bits(a), math.Float64bits(b))
		check64(t, "mul", a, b, got, a*b)
	}
}

func TestDiv64AgainstNative(t *testing.T) {
	src := prng.New(104)
	for i := 0; i < 50000; i++ {
		a, b := interestingF64(src), interestingF64(src)
		got, _ := Binary64.Div(math.Float64bits(a), math.Float64bits(b))
		check64(t, "div", a, b, got, a/b)
	}
}

func TestAdd32AgainstNative(t *testing.T) {
	src := prng.New(105)
	for i := 0; i < 200000; i++ {
		a, b := interestingF32(src), interestingF32(src)
		got, _ := Binary32.Add(uint64(math.Float32bits(a)), uint64(math.Float32bits(b)))
		check32(t, "add32", a, b, got, a+b)
	}
}

func TestSub32AgainstNative(t *testing.T) {
	src := prng.New(106)
	for i := 0; i < 200000; i++ {
		a, b := interestingF32(src), interestingF32(src)
		got, _ := Binary32.Sub(uint64(math.Float32bits(a)), uint64(math.Float32bits(b)))
		check32(t, "sub32", a, b, got, a-b)
	}
}

func TestMul32AgainstNative(t *testing.T) {
	src := prng.New(107)
	for i := 0; i < 200000; i++ {
		a, b := interestingF32(src), interestingF32(src)
		got, _ := Binary32.Mul(uint64(math.Float32bits(a)), uint64(math.Float32bits(b)))
		check32(t, "mul32", a, b, got, a*b)
	}
}

func TestDiv32AgainstNative(t *testing.T) {
	src := prng.New(108)
	for i := 0; i < 50000; i++ {
		a, b := interestingF32(src), interestingF32(src)
		got, _ := Binary32.Div(uint64(math.Float32bits(a)), uint64(math.Float32bits(b)))
		check32(t, "div32", a, b, got, a/b)
	}
}

func TestQuickAddCommutes(t *testing.T) {
	if err := quick.Check(func(a, b uint64) bool {
		r1, _ := Binary64.Add(a, b)
		r2, _ := Binary64.Add(b, a)
		return r1 == r2
	}, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMulCommutes(t *testing.T) {
	if err := quick.Check(func(a, b uint64) bool {
		r1, _ := Binary64.Mul(a, b)
		r2, _ := Binary64.Mul(b, a)
		return r1 == r2
	}, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSubSelfIsZero(t *testing.T) {
	if err := quick.Check(func(a uint64) bool {
		u := Binary64.unpack(a)
		if u.isNaN(Binary64) || u.isInf(Binary64) {
			return true
		}
		r, _ := Binary64.Sub(a, a)
		return r == Binary64.Zero(0) || (u.isZero(Binary64) && r>>63 <= 1)
	}, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestSpecialCases(t *testing.T) {
	f := Binary64
	inf := math.Float64bits(math.Inf(1))
	ninf := math.Float64bits(math.Inf(-1))
	one := math.Float64bits(1)
	zero := uint64(0)
	nzero := uint64(1) << 63

	if r, fl := f.Add(inf, ninf); !f.IsNaNBits(r) || !fl.Has(FlagInvalid) {
		t.Fatal("inf + -inf must be invalid NaN")
	}
	if r, _ := f.Add(inf, one); r != inf {
		t.Fatal("inf + 1 must be inf")
	}
	if r, fl := f.Mul(inf, zero); !f.IsNaNBits(r) || !fl.Has(FlagInvalid) {
		t.Fatal("inf * 0 must be invalid NaN")
	}
	if r, fl := f.Div(one, zero); r != inf || !fl.Has(FlagDivZero) {
		t.Fatal("1/0 must be +inf with divzero")
	}
	if r, fl := f.Div(one, nzero); r != ninf || !fl.Has(FlagDivZero) {
		t.Fatal("1/-0 must be -inf with divzero")
	}
	if r, fl := f.Div(zero, zero); !f.IsNaNBits(r) || !fl.Has(FlagInvalid) {
		t.Fatal("0/0 must be invalid NaN")
	}
	if r, fl := f.Div(inf, inf); !f.IsNaNBits(r) || !fl.Has(FlagInvalid) {
		t.Fatal("inf/inf must be invalid NaN")
	}
	if r, _ := f.Add(nzero, nzero); r != nzero {
		t.Fatal("-0 + -0 must be -0")
	}
	if r, _ := f.Add(zero, nzero); r != zero {
		t.Fatal("0 + -0 must be +0")
	}
}

func TestOverflowToInf(t *testing.T) {
	f := Binary64
	max := math.Float64bits(math.MaxFloat64)
	r, fl := f.Mul(max, max)
	if r != f.Inf(0) || !fl.Has(FlagOverflow) {
		t.Fatalf("max*max = %x flags %b", r, fl)
	}
	r, fl = f.Add(max, max)
	if r != f.Inf(0) || !fl.Has(FlagOverflow) {
		t.Fatalf("max+max = %x flags %b", r, fl)
	}
}

func TestUnderflowFlushesToZero(t *testing.T) {
	f := Binary64
	tiny := math.Float64bits(1e-300)
	r, fl := f.Mul(tiny, tiny)
	if r != f.Zero(0) || !fl.Has(FlagUnderflow) {
		t.Fatalf("tiny*tiny = %x flags %b", r, fl)
	}
	ntiny := math.Float64bits(-1e-300)
	r, _ = f.Mul(tiny, ntiny)
	if r != f.Zero(1) {
		t.Fatalf("underflow sign lost: %x", r)
	}
}

func TestDenormalInputsFlushed(t *testing.T) {
	f := Binary64
	den := uint64(0x000fffffffffffff) // largest denormal
	one := math.Float64bits(1)
	r, _ := f.Add(den, one)
	if r != one {
		t.Fatalf("denormal input not flushed: %x", r)
	}
	if f.FlushInput(den) != f.Zero(0) {
		t.Fatal("FlushInput failed")
	}
	if f.FlushInput(one) != one {
		t.Fatal("FlushInput must not alter normals")
	}
}

func TestFromInt32(t *testing.T) {
	src := prng.New(110)
	cases := []int32{0, 1, -1, math.MaxInt32, math.MinInt32, 42, -1000000}
	for i := 0; i < 100000; i++ {
		var x int32
		if i < len(cases) {
			x = cases[i]
		} else {
			x = int32(src.Uint32())
		}
		got, _ := Binary64.FromInt32(x)
		if want := math.Float64bits(float64(x)); got != want {
			t.Fatalf("FromInt32_64(%d) = %x want %x", x, got, want)
		}
		got32, _ := Binary32.FromInt32(x)
		if want := uint64(math.Float32bits(float32(x))); got32 != want {
			t.Fatalf("FromInt32_32(%d) = %x want %x", x, got32, want)
		}
	}
}

func TestToInt32(t *testing.T) {
	src := prng.New(111)
	for i := 0; i < 100000; i++ {
		a := interestingF64(src)
		got, _ := Binary64.ToInt32(math.Float64bits(a))
		var want int32
		switch {
		case math.IsNaN(a):
			want = 0
		case a >= math.MaxInt32:
			want = math.MaxInt32
		case a <= math.MinInt32:
			want = math.MinInt32
		default:
			want = int32(a) // Go truncates toward zero
		}
		if got != want {
			t.Fatalf("ToInt32(%g) = %d want %d", a, got, want)
		}
	}
}

func TestToInt32RoundTrip(t *testing.T) {
	if err := quick.Check(func(x int32) bool {
		f, _ := Binary64.FromInt32(x)
		back, _ := Binary64.ToInt32(f)
		return back == x
	}, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

func TestFormatHelpers(t *testing.T) {
	if Binary64.Width() != 64 || Binary32.Width() != 32 {
		t.Fatal("widths wrong")
	}
	if !Binary64.IsNaNBits(Binary64.QNaN()) {
		t.Fatal("QNaN not NaN")
	}
	if Binary64.IsNaNBits(Binary64.Inf(0)) {
		t.Fatal("Inf is not NaN")
	}
	if math.Float64frombits(Binary64.QNaN()) == math.Float64frombits(Binary64.QNaN()) {
		t.Fatal("QNaN must not compare equal to itself as a float")
	}
}

func TestFlagsInexact(t *testing.T) {
	f := Binary64
	third, fl := f.Div(math.Float64bits(1), math.Float64bits(3))
	if !fl.Has(FlagInexact) {
		t.Fatal("1/3 must be inexact")
	}
	if third != math.Float64bits(1.0/3.0) {
		t.Fatal("1/3 value wrong")
	}
	_, fl = f.Add(math.Float64bits(1), math.Float64bits(1))
	if fl.Has(FlagInexact) {
		t.Fatal("1+1 must be exact")
	}
}
