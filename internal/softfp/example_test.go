package softfp_test

import (
	"fmt"
	"math"

	"teva/internal/softfp"
)

// ExampleFormat_Add adds two doubles through the bit-accurate software
// model the gate-level FPU is validated against.
func ExampleFormat_Add() {
	f := softfp.Binary64
	sum, flags := f.Add(math.Float64bits(0.1), math.Float64bits(0.2))
	fmt.Printf("%.17g inexact=%v\n", math.Float64frombits(sum), flags.Has(softfp.FlagInexact))
	// Output:
	// 0.30000000000000004 inexact=true
}

// ExampleFormat_Div shows the exception flags on a division by zero.
func ExampleFormat_Div() {
	f := softfp.Binary64
	q, flags := f.Div(math.Float64bits(1), f.Zero(0))
	fmt.Printf("%v divzero=%v\n", math.Float64frombits(q), flags.Has(softfp.FlagDivZero))
	// Output:
	// +Inf divzero=true
}
