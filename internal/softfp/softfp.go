// Package softfp is a bit-accurate software implementation of the IEEE-754
// operations the target FPU executes: add, sub, mul, div, int-to-float and
// float-to-int conversions, in single and double precision. It mirrors the
// hardware algorithm (align → operate → normalize → round-to-nearest-even)
// and serves as the golden reference the gate-level FPU netlists are
// validated against.
//
// Denormal handling is flush-to-zero in both directions (denormal inputs
// read as zero, denormal results flush to zero), matching the gate-level
// implementation; this deviation from full IEEE-754 gradual underflow is
// recorded in DESIGN.md. Rounding is round-to-nearest-even. NaN results
// are canonical quiet NaNs.
package softfp

import "math/bits"

// Flags records IEEE-754 exception conditions raised by an operation; the
// target FPU "generates exception signals" for the same set.
type Flags uint8

// Exception flags.
const (
	FlagInvalid Flags = 1 << iota
	FlagDivZero
	FlagOverflow
	FlagUnderflow
	FlagInexact
)

// Has reports whether all flags in mask are set.
func (f Flags) Has(mask Flags) bool { return f&mask == mask }

// Format describes a binary interchange format.
type Format struct {
	// ExpBits is the exponent field width (11 for binary64, 8 for binary32).
	ExpBits uint
	// FracBits is the fraction field width (52 / 23).
	FracBits uint
}

// The two formats the FPU implements.
var (
	Binary64 = Format{ExpBits: 11, FracBits: 52}
	Binary32 = Format{ExpBits: 8, FracBits: 23}
)

// Width returns the total encoding width in bits.
func (f Format) Width() uint { return 1 + f.ExpBits + f.FracBits }

func (f Format) bias() int        { return 1<<(f.ExpBits-1) - 1 }
func (f Format) expMax() int      { return 1<<f.ExpBits - 1 }
func (f Format) fracMask() uint64 { return 1<<f.FracBits - 1 }
func (f Format) signMask() uint64 { return 1 << (f.ExpBits + f.FracBits) }

// QNaN returns the canonical quiet NaN encoding.
func (f Format) QNaN() uint64 {
	return uint64(f.expMax())<<f.FracBits | 1<<(f.FracBits-1)
}

// Inf returns the infinity encoding with the given sign.
func (f Format) Inf(sign uint64) uint64 {
	return sign<<(f.ExpBits+f.FracBits) | uint64(f.expMax())<<f.FracBits
}

// Zero returns the zero encoding with the given sign.
func (f Format) Zero(sign uint64) uint64 { return sign << (f.ExpBits + f.FracBits) }

// unpacked is a decoded operand.
type unpacked struct {
	sign uint64 // 0 or 1
	exp  int    // biased exponent field
	frac uint64 // fraction field
}

func (f Format) unpack(x uint64) unpacked {
	return unpacked{
		sign: x >> (f.ExpBits + f.FracBits) & 1,
		exp:  int(x >> f.FracBits & uint64(f.expMax())),
		frac: x & f.fracMask(),
	}
}

func (u unpacked) isNaN(f Format) bool  { return u.exp == f.expMax() && u.frac != 0 }
func (u unpacked) isInf(f Format) bool  { return u.exp == f.expMax() && u.frac == 0 }
func (u unpacked) isZero(f Format) bool { return u.exp == 0 } // FTZ: denormals are zero

// sig returns the significand with the implicit leading one, or 0 for
// (flushed) zeros.
func (u unpacked) sig(f Format) uint64 {
	if u.exp == 0 {
		return 0
	}
	return 1<<f.FracBits | u.frac
}

// roundPack assembles sign/exp/mantissa-with-GRS into an encoding with
// round-to-nearest-even. mant holds the significand in bits
// [3, 3+FracBits] (leading one at bit FracBits+3) and guard/round/sticky
// in bits 2..0. exp is the biased exponent of that leading-one position.
func (f Format) roundPack(sign uint64, exp int, mant uint64) (uint64, Flags) {
	var flags Flags
	grs := mant & 7
	m := mant >> 3
	if grs != 0 {
		flags |= FlagInexact
	}
	// Round to nearest even: guard set and (round|sticky|lsb).
	if grs&4 != 0 && (grs&3 != 0 || m&1 != 0) {
		m++
		if m == 1<<(f.FracBits+1) {
			m >>= 1
			exp++
		}
	}
	if exp >= f.expMax() {
		return f.Inf(sign), flags | FlagOverflow | FlagInexact
	}
	if exp <= 0 {
		// Result below the normal range: flush to zero.
		return f.Zero(sign), flags | FlagUnderflow | FlagInexact
	}
	return sign<<(f.ExpBits+f.FracBits) | uint64(exp)<<f.FracBits | m&f.fracMask(), flags
}

// Add returns a+b in the format.
func (f Format) Add(a, b uint64) (uint64, Flags) { return f.addSigned(a, b, 0) }

// Sub returns a-b in the format.
func (f Format) Sub(a, b uint64) (uint64, Flags) { return f.addSigned(a, b, 1) }

// addSigned computes a + (-1)^negB * b.
func (f Format) addSigned(a, b uint64, negB uint64) (uint64, Flags) {
	ua, ub := f.unpack(a), f.unpack(b)
	ub.sign ^= negB
	switch {
	case ua.isNaN(f) || ub.isNaN(f):
		return f.QNaN(), FlagInvalid
	case ua.isInf(f) && ub.isInf(f):
		if ua.sign != ub.sign {
			return f.QNaN(), FlagInvalid
		}
		return f.Inf(ua.sign), 0
	case ua.isInf(f):
		return f.Inf(ua.sign), 0
	case ub.isInf(f):
		return f.Inf(ub.sign), 0
	case ua.isZero(f) && ub.isZero(f):
		// +0 unless both negative (round-to-nearest sign rule).
		if ua.sign == 1 && ub.sign == 1 {
			return f.Zero(1), 0
		}
		return f.Zero(0), 0
	case ua.isZero(f):
		return f.pack(ub), 0
	case ub.isZero(f):
		return f.pack(ua), 0
	}

	// Order so |a| >= |b|.
	magA := uint64(ua.exp)<<f.FracBits | ua.frac
	magB := uint64(ub.exp)<<f.FracBits | ub.frac
	if magB > magA {
		ua, ub = ub, ua
	}
	d := uint(ua.exp - ub.exp)
	// Significands with 3 guard positions.
	x := ua.sig(f) << 3
	y := ub.sig(f) << 3
	width := f.FracBits + 4 // bits in x
	var ySh uint64
	if d >= width {
		if y != 0 {
			ySh = 1 // pure sticky
		}
	} else if d > 0 {
		sticky := uint64(0)
		if y&(1<<d-1) != 0 {
			sticky = 1
		}
		ySh = y>>d | sticky
	} else {
		ySh = y
	}

	var sum uint64
	exp := ua.exp
	if ua.sign == ub.sign {
		sum = x + ySh
		if sum >= 1<<(width) {
			// Carry out: shift right one, preserving sticky.
			sum = sum>>1 | sum&1
			exp++
		}
	} else {
		sum = x - ySh
		if sum == 0 {
			return f.Zero(0), 0
		}
		// Normalize left.
		lz := bits.LeadingZeros64(sum) - int(64-width)
		sum <<= uint(lz)
		exp -= lz
	}
	return f.roundPack(ua.sign, exp, sum)
}

// pack re-encodes an unpacked normal/zero value.
func (f Format) pack(u unpacked) uint64 {
	if u.exp == 0 {
		return f.Zero(u.sign)
	}
	return u.sign<<(f.ExpBits+f.FracBits) | uint64(u.exp)<<f.FracBits | u.frac
}

// Mul returns a*b in the format.
func (f Format) Mul(a, b uint64) (uint64, Flags) {
	ua, ub := f.unpack(a), f.unpack(b)
	sign := ua.sign ^ ub.sign
	switch {
	case ua.isNaN(f) || ub.isNaN(f):
		return f.QNaN(), FlagInvalid
	case ua.isInf(f) || ub.isInf(f):
		if ua.isZero(f) || ub.isZero(f) {
			return f.QNaN(), FlagInvalid
		}
		return f.Inf(sign), 0
	case ua.isZero(f) || ub.isZero(f):
		return f.Zero(sign), 0
	}
	// Product of two (FracBits+1)-bit significands.
	hi, lo := bits.Mul64(ua.sig(f), ub.sig(f))
	// The product has 2*FracBits+1 or +2 bits; bring it to a
	// (FracBits+1)-bit mantissa with 3 guard bits.
	pw := 2*f.FracBits + 2 // max product width
	exp := ua.exp + ub.exp - f.bias()
	// Normalize so the leading one sits at bit pw-1.
	if hi == 0 && lo < 1<<(pw-1) && pw <= 64 {
		// Leading one at pw-2: product in [1,2); adjust.
		exp--
		lo <<= 1
	} else if pw > 64 {
		// 128-bit path (binary64): leading one at bit pw-1 or pw-2 of the
		// 128-bit product.
		if hi>>(pw-1-64)&1 == 0 {
			exp--
			hi = hi<<1 | lo>>63
			lo <<= 1
		}
	}
	exp++ // product of two [1,2) values is [1,4): leading position carries +1 weight

	var mant uint64
	if pw <= 64 {
		// binary32: keep FracBits+1 top bits plus GRS.
		shift := pw - (f.FracBits + 4)
		mant = lo >> shift
		if lo&(1<<shift-1) != 0 {
			mant |= 1
		}
	} else {
		// binary64: top bits live in hi.
		topBits := pw - 64 // bits of product in hi (after normalization)
		need := f.FracBits + 4
		fromHi := uint(topBits)
		mant = hi << (need - fromHi)
		mant |= lo >> (64 - (need - fromHi))
		if lo<<(need-fromHi) != 0 {
			mant |= 1
		}
	}
	return f.roundPack(sign, exp, mant)
}

// Div returns a/b in the format.
func (f Format) Div(a, b uint64) (uint64, Flags) {
	ua, ub := f.unpack(a), f.unpack(b)
	sign := ua.sign ^ ub.sign
	switch {
	case ua.isNaN(f) || ub.isNaN(f):
		return f.QNaN(), FlagInvalid
	case ua.isInf(f) && ub.isInf(f):
		return f.QNaN(), FlagInvalid
	case ua.isInf(f):
		return f.Inf(sign), 0
	case ub.isInf(f):
		return f.Zero(sign), 0
	case ub.isZero(f):
		if ua.isZero(f) {
			return f.QNaN(), FlagInvalid
		}
		return f.Inf(sign), FlagDivZero
	case ua.isZero(f):
		return f.Zero(sign), 0
	}
	sa, sb := ua.sig(f), ub.sig(f)
	exp := ua.exp - ub.exp + f.bias()
	// If sa < sb the quotient is in [0.5,1): pre-shift to keep the leading
	// one at a fixed position.
	if sa < sb {
		exp--
		sa <<= 1
	}
	// Long division producing FracBits+1 quotient bits plus 3 guard bits.
	qBits := f.FracBits + 4
	var q, rem uint64
	rem = sa
	for i := uint(0); i < qBits; i++ {
		q <<= 1
		if rem >= sb {
			rem -= sb
			q |= 1
		}
		rem <<= 1
	}
	if rem != 0 {
		q |= 1 // sticky
	}
	return f.roundPack(sign, exp, q)
}

// FromInt32 converts a signed 32-bit integer to the format with
// round-to-nearest-even (exact for binary64).
func (f Format) FromInt32(x int32) (uint64, Flags) {
	if x == 0 {
		return f.Zero(0), 0
	}
	var sign uint64
	mag := uint64(x)
	if x < 0 {
		sign = 1
		mag = uint64(-int64(x))
	}
	lz := bits.LeadingZeros64(mag)
	msb := 63 - lz // position of the leading one
	exp := f.bias() + msb
	// Place the leading one at bit FracBits+3 (mantissa with GRS).
	target := int(f.FracBits) + 3
	var mant uint64
	if msb <= target {
		mant = mag << uint(target-msb)
	} else {
		shift := uint(msb - target)
		mant = mag >> shift
		if mag&(1<<shift-1) != 0 {
			mant |= 1
		}
	}
	return f.roundPack(sign, exp, mant)
}

// ToInt32 converts to a signed 32-bit integer, truncating toward zero.
// NaN converts to 0 with FlagInvalid; out-of-range values saturate with
// FlagInvalid (the FPU's exception behaviour).
func (f Format) ToInt32(a uint64) (int32, Flags) {
	u := f.unpack(a)
	switch {
	case u.isNaN(f):
		return 0, FlagInvalid
	case u.isInf(f):
		if u.sign == 1 {
			return -1 << 31, FlagInvalid
		}
		return 1<<31 - 1, FlagInvalid
	case u.isZero(f):
		return 0, 0
	}
	e := u.exp - f.bias() // unbiased exponent
	if e < 0 {
		return 0, FlagInexact
	}
	if e >= 31 {
		// Magnitude >= 2^31: saturate (except exactly -2^31).
		if u.sign == 1 && e == 31 && u.frac == 0 {
			return -1 << 31, 0
		}
		if u.sign == 1 {
			return -1 << 31, FlagInvalid
		}
		return 1<<31 - 1, FlagInvalid
	}
	sig := u.sig(f)
	var mag uint64
	var flags Flags
	if shift := int(f.FracBits) - e; shift > 0 {
		mag = sig >> uint(shift)
		if sig&(1<<uint(shift)-1) != 0 {
			flags |= FlagInexact
		}
	} else {
		mag = sig << uint(-shift)
	}
	if u.sign == 1 {
		return int32(-int64(mag)), flags
	}
	return int32(mag), flags
}

// FlushInput returns the operand with denormals flushed to zero, the form
// in which the FPU datapath observes it.
func (f Format) FlushInput(a uint64) uint64 {
	u := f.unpack(a)
	if u.exp == 0 && u.frac != 0 {
		return f.Zero(u.sign)
	}
	return a
}

// IsNaNBits reports whether the encoding is any NaN.
func (f Format) IsNaNBits(a uint64) bool { return f.unpack(a).isNaN(f) }
