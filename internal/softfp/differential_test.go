package softfp

import (
	"math"
	"testing"
)

// ftz64 models the package's flush-to-zero semantics on an encoding: a
// nonzero denormal reads as (signed) zero.
func ftz64(bits uint64) uint64 {
	if isDenorm64(bits) {
		return bits & (1 << 63)
	}
	return bits
}

// wantFTZ computes the reference result for a binary64 op under the FTZ
// contract: inputs flushed, the native IEEE result computed, and a
// denormal result flushed to zero (keeping its sign).
func wantFTZ(native func(a, b float64) float64, ab, bb uint64) uint64 {
	w := math.Float64bits(native(
		math.Float64frombits(ftz64(ab)), math.Float64frombits(ftz64(bb))))
	return ftz64(w)
}

// denormBoundary64 enumerates encodings on and around the
// denormal/normal border plus rounding-boundary mantissa patterns.
func denormBoundary64() []uint64 {
	minNormal := uint64(0x0010000000000000) // 2^-1022
	maxDenorm := minNormal - 1
	return []uint64{
		0,                         // +0
		1 << 63,                   // -0
		1,                         // smallest positive denormal
		maxDenorm,                 // largest denormal
		1<<63 | 1,                 // smallest-magnitude negative denormal
		1<<63 | maxDenorm,         // largest-magnitude negative denormal
		minNormal,                 // smallest normal
		minNormal + 1,             // just above
		1<<63 | minNormal,         // smallest-magnitude negative normal
		math.Float64bits(1.0),     //
		math.Float64bits(1.0) + 1, // 1 + ulp: round-to-even fodder
		math.Float64bits(2.0) - 1, // just under 2
		math.Float64bits(0.5) + 1, //
		math.Float64bits(3.0),     // divisor forcing repeating binary
		math.Float64bits(10.0),    //
		math.Float64bits(1e-308),  // near the underflow cliff
		math.Float64bits(4e-308),  //
		math.Float64bits(1e308),   // near overflow
		math.Float64bits(math.MaxFloat64),
	}
}

// TestDivDifferentialFTZ compares Div against native division over the
// cross product of denormal and rounding-boundary encodings, under the
// package's documented FTZ contract. Unlike the fuzz harness (which
// skips denormals entirely), this pins the flush behavior itself.
func TestDivDifferentialFTZ(t *testing.T) {
	vals := denormBoundary64()
	for _, ab := range vals {
		for _, bb := range vals {
			got, _ := Binary64.Div(ab, bb)
			want := wantFTZ(func(x, y float64) float64 { return x / y }, ab, bb)
			if Binary64.IsNaNBits(got) && Binary64.IsNaNBits(want) {
				continue // 0/0 and friends: any NaN encoding is fine
			}
			if got != want {
				t.Errorf("Div(%#x, %#x) = %#x, want %#x (a=%g b=%g)",
					ab, bb, got, want,
					math.Float64frombits(ab), math.Float64frombits(bb))
			}
		}
	}
}

// TestArithDifferentialFTZ extends the same FTZ differential check to
// add/sub/mul on the boundary set.
func TestArithDifferentialFTZ(t *testing.T) {
	ops := []struct {
		name   string
		soft   func(a, b uint64) (uint64, Flags)
		native func(a, b float64) float64
	}{
		{"add", Binary64.Add, func(x, y float64) float64 { return x + y }},
		{"sub", Binary64.Sub, func(x, y float64) float64 { return x - y }},
		{"mul", Binary64.Mul, func(x, y float64) float64 { return x * y }},
	}
	vals := denormBoundary64()
	for _, op := range ops {
		for _, ab := range vals {
			for _, bb := range vals {
				got, _ := op.soft(ab, bb)
				want := wantFTZ(op.native, ab, bb)
				if Binary64.IsNaNBits(got) && Binary64.IsNaNBits(want) {
					continue
				}
				if got != want {
					t.Errorf("%s(%#x, %#x) = %#x, want %#x", op.name, ab, bb, got, want)
				}
			}
		}
	}
}

// TestToInt32RoundingBoundaries pins the truncate-toward-zero conversion
// on the exact boundaries the fuzz seeds only sample: halfway values,
// the int32 saturation edges, and denormals (which truncate to 0 with or
// without FTZ).
func TestToInt32RoundingBoundaries(t *testing.T) {
	cases := []struct {
		in   float64
		want int32
	}{
		{0.5, 0}, {-0.5, 0}, {0.999999999, 0}, {-0.999999999, 0},
		{1.5, 1}, {-1.5, -1}, {2.5, 2}, {-2.5, -2},
		{2147483646.5, 2147483646},
		{2147483647.0, math.MaxInt32},
		{2147483648.0, math.MaxInt32},
		{-2147483648.0, math.MinInt32},
		{-2147483648.5, math.MinInt32},
		{-2147483649.0, math.MinInt32},
		{5e-324, 0},  // denormal
		{-5e-324, 0}, //
		{math.Inf(1), math.MaxInt32},
		{math.Inf(-1), math.MinInt32},
	}
	for _, tc := range cases {
		got, _ := Binary64.ToInt32(math.Float64bits(tc.in))
		if got != tc.want {
			t.Errorf("ToInt32(%v) = %d, want %d", tc.in, got, tc.want)
		}
	}
	if got, _ := Binary64.ToInt32(math.Float64bits(math.NaN())); got != 0 {
		t.Errorf("ToInt32(NaN) = %d, want 0", got)
	}
}

// TestFromInt32Boundaries pins the exactness of int32→binary64: every
// int32 is representable, so the conversion must be bit-exact including
// the extremes.
func TestFromInt32Boundaries(t *testing.T) {
	for _, x := range []int32{0, 1, -1, math.MaxInt32, math.MinInt32,
		math.MaxInt32 - 1, math.MinInt32 + 1, 1 << 24, -(1 << 24)} {
		got, _ := Binary64.FromInt32(x)
		if want := math.Float64bits(float64(x)); got != want {
			t.Errorf("FromInt32(%d) = %#x, want %#x", x, got, want)
		}
	}
}
