package softfp

import (
	"math"
	"testing"
)

// fuzzCheck64 compares one binary64 operation against native hardware
// arithmetic, skipping the documented flush-to-zero deviations.
func fuzzCheck64(t *testing.T, name string, soft func(a, b uint64) (uint64, Flags),
	native func(a, b float64) float64, ab, bb uint64) {
	t.Helper()
	a, b := math.Float64frombits(ab), math.Float64frombits(bb)
	if isDenorm64(ab) || isDenorm64(bb) {
		return
	}
	want := native(a, b)
	if isDenorm64(math.Float64bits(want)) {
		return
	}
	got, _ := soft(ab, bb)
	if Binary64.IsNaNBits(got) && math.IsNaN(want) {
		return
	}
	if got != math.Float64bits(want) {
		t.Fatalf("%s(%g, %g) = %#x, want %#x", name, a, b, got, math.Float64bits(want))
	}
}

// FuzzArith64 cross-checks add/sub/mul/div against the host FPU.
func FuzzArith64(f *testing.F) {
	f.Add(math.Float64bits(1.5), math.Float64bits(2.25))
	f.Add(math.Float64bits(1e308), math.Float64bits(1e308))
	f.Add(math.Float64bits(-0.0), math.Float64bits(0.0))
	f.Add(math.Float64bits(math.Inf(1)), math.Float64bits(math.Inf(-1)))
	f.Add(uint64(0x7ff8000000000001), uint64(1))
	f.Add(math.Float64bits(1.0000000000000002), math.Float64bits(1))
	// Denormal/normal border and rounding-boundary seeds (the checker
	// skips the FTZ-deviating cases; the differential tests pin those).
	f.Add(uint64(0x0010000000000000), uint64(0x000fffffffffffff)) // min normal vs max denormal
	f.Add(uint64(1), uint64(1<<63|1))                             // +/- smallest denormals
	f.Add(math.Float64bits(1.0)+1, math.Float64bits(2.0)-1)       // 1+ulp vs pred(2): round-to-even
	f.Add(math.Float64bits(1e-308), math.Float64bits(1e308))      // underflow x overflow
	f.Add(math.Float64bits(1.0), math.Float64bits(3.0))           // repeating-binary quotient
	f.Add(math.Float64bits(math.MaxFloat64), math.Float64bits(0.5))
	f.Fuzz(func(t *testing.T, a, b uint64) {
		fuzzCheck64(t, "add", Binary64.Add, func(x, y float64) float64 { return x + y }, a, b)
		fuzzCheck64(t, "sub", Binary64.Sub, func(x, y float64) float64 { return x - y }, a, b)
		fuzzCheck64(t, "mul", Binary64.Mul, func(x, y float64) float64 { return x * y }, a, b)
		fuzzCheck64(t, "div", Binary64.Div, func(x, y float64) float64 { return x / y }, a, b)
	})
}

// FuzzConversions cross-checks the int conversions.
func FuzzConversions(f *testing.F) {
	f.Add(int32(0), uint64(0))
	f.Add(int32(math.MinInt32), math.Float64bits(3e9))
	f.Add(int32(-1), math.Float64bits(-2.5))
	f.Add(int32(math.MaxInt32), math.Float64bits(2147483647.5)) // saturation edge
	f.Add(int32(1<<24), math.Float64bits(-2147483648.0))        // exact MinInt32
	f.Add(int32(7), uint64(0x000fffffffffffff))                 // max denormal truncates to 0
	f.Add(int32(-7), math.Float64bits(0.9999999999999999))      // just under 1
	f.Fuzz(func(t *testing.T, x int32, fb uint64) {
		got, _ := Binary64.FromInt32(x)
		if got != math.Float64bits(float64(x)) {
			t.Fatalf("FromInt32(%d) = %#x", x, got)
		}
		v := math.Float64frombits(fb)
		gotI, _ := Binary64.ToInt32(fb)
		var want int32
		switch {
		case math.IsNaN(v):
			want = 0
		case v >= math.MaxInt32:
			want = math.MaxInt32
		case v <= math.MinInt32:
			want = math.MinInt32
		default:
			want = int32(v)
		}
		if gotI != want {
			t.Fatalf("ToInt32(%g) = %d, want %d", v, gotI, want)
		}
	})
}
