package dta

import (
	"fmt"
	"math"
	"testing"
	"time"

	"teva/internal/cell"
	"teva/internal/fpu"
	"teva/internal/prng"
	"teva/internal/vscale"
)

func TestCalibrationProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration probe")
	}
	f, err := fpu.New(cell.Default(), 0xF00D)
	if err != nil {
		t.Fatal(err)
	}
	m := vscale.Default45nm()
	src := prng.New(42)
	mkPairs := func(op fpu.Op, n int) []Pair {
		pairs := make([]Pair, n)
		for i := range pairs {
			if op.OperandWidth() == 32 && op != fpu.DF2I {
				pairs[i] = Pair{A: uint64(src.Uint32()), B: uint64(src.Uint32())}
			} else {
				w := op.OperandWidth()
				mask := uint64(1)<<uint(w) - 1
				if w == 64 {
					mask = ^uint64(0)
				}
				pairs[i] = Pair{A: src.Uint64() & mask, B: src.Uint64() & mask}
			}
		}
		return pairs
	}
	for _, op := range []fpu.Op{fpu.DMul, fpu.DSub, fpu.DAdd, fpu.DDiv, fpu.DI2F, fpu.SMul} {
		n := 3000
		if op == fpu.DDiv {
			n = 600
		}
		pairs := mkPairs(op, n)
		for _, lv := range []vscale.VRLevel{vscale.VR15, vscale.VR20} {
			start := time.Now()
			recs := AnalyzeStream(f, op, m, lv, false, pairs, 0)
			sum := Summarize(op, recs)
			var maxArr, meanArr float64
			for _, r := range recs {
				maxArr = math.Max(maxArr, r.MaxArrivalPS)
				meanArr += r.MaxArrivalPS
			}
			meanArr /= float64(len(recs))
			fmt.Printf("%-9s %-5s ER=%.4f multi=%.2f meanArr=%.0f maxArr=%.0f deadline=%.0f (%.1fs)\n",
				op, lv.Name, sum.ErrorRatio(), sum.MultiBitFraction(), meanArr, maxArr,
				f.CLK-35*m.ScaleFor(lv), time.Since(start).Seconds())
		}
	}
}
