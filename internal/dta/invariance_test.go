package dta

import (
	"bytes"
	"encoding/json"
	"testing"

	"teva/internal/fpu"
	"teva/internal/vscale"
)

// TestEngineAndLaneCountInvariance is the batching contract: the wide
// engine must produce records identical to the scalar fast engine —
// Golden, Faulty, Mask, and bit-exact MaxArrivalPS — for every batch
// granularity and worker fan-out, because the lane-shift carry replays
// the exact serial transition history regardless of how the stream is
// chopped. A failure here means batch boundaries leak into results.
func TestEngineAndLaneCountInvariance(t *testing.T) {
	for _, op := range []fpu.Op{fpu.DAdd, fpu.DMul} {
		pairs := randPairs(op, 200, 0xC0FFEE)
		scale := testModel.ScaleFor(vscale.VR20)

		// Serial scalar reference: one pair at a time.
		ref := make([]Record, len(pairs))
		a := NewEngineAt(testFPU, op, scale, EngineFast)
		a.AnalyzeBatch(pairs, ref)

		// Wide engine at varying batch sizes (lane occupancies 1..64).
		for _, batch := range []int{1, 4, 64} {
			w := NewEngineAt(testFPU, op, scale, EngineWide)
			got := make([]Record, len(pairs))
			for lo := 0; lo < len(pairs); lo += batch {
				hi := min(lo+batch, len(pairs))
				w.AnalyzeBatch(pairs[lo:hi], got[lo:hi])
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("%s: wide batch=%d diverges at record %d:\n  fast %+v\n  wide %+v",
						op, batch, i, ref[i], got[i])
				}
			}
		}

		// Full stream path at varying worker counts and engines.
		for _, eng := range []Engine{EngineWide, EngineFast} {
			for _, workers := range []int{1, 4, 64} {
				got := AnalyzeStreamObs(testFPU, op, scale, eng, pairs, workers, nil)
				for i := range ref {
					if got[i] != ref[i] {
						t.Fatalf("%s: engine=%s workers=%d diverges at record %d:\n  ref %+v\n  got %+v",
							op, eng, workers, i, ref[i], got[i])
					}
				}
			}
		}
	}
}

// TestAnalyzeBatchSteadyStateAllocs pins the DTA hot loop's
// zero-allocation invariant: once an analyzer is warm, streaming batches
// through it allocates nothing for either the wide or the scalar fast
// engine.
func TestAnalyzeBatchSteadyStateAllocs(t *testing.T) {
	op := fpu.DAdd
	pairs := randPairs(op, 64, 0xA110C)
	recs := make([]Record, len(pairs))
	scale := testModel.ScaleFor(vscale.VR20)
	for _, eng := range []Engine{EngineWide, EngineFast} {
		a := NewEngineAt(testFPU, op, scale, eng)
		a.AnalyzeBatch(pairs, recs) // warm: history primed, buffers touched
		avg := testing.AllocsPerRun(20, func() {
			a.AnalyzeBatch(pairs, recs)
		})
		if avg != 0 {
			t.Errorf("engine=%s: AnalyzeBatch allocates %.1f objects per call, want 0", eng, avg)
		}
	}
}

// TestEmptyStreamSummaryDeterministic guards the degenerate no-records
// path: summarizing an empty stream must not divide by zero (NaN ratios
// would poison downstream JSON) and must serialize byte-identically run
// to run.
func TestEmptyStreamSummaryDeterministic(t *testing.T) {
	recs := AnalyzeStream(testFPU, fpu.DAdd, testModel, vscale.VR20, false, nil, 4)
	if len(recs) != 0 {
		t.Fatalf("empty stream produced %d records", len(recs))
	}
	s := Summarize(fpu.DAdd, recs)
	if got := s.ErrorRatio(); got != 0 {
		t.Errorf("empty ErrorRatio = %v, want 0", got)
	}
	if got := s.MultiBitFraction(); got != 0 {
		t.Errorf("empty MultiBitFraction = %v, want 0", got)
	}
	for i, b := range s.BER() {
		if b != 0 {
			t.Errorf("empty BER[%d] = %v, want 0", i, b)
		}
	}
	first, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	again, err := json.Marshal(Summarize(fpu.DAdd, AnalyzeStream(testFPU, fpu.DAdd, testModel, vscale.VR20, false, nil, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, again) {
		t.Errorf("empty-stream summaries not byte-identical:\n%s\n%s", first, again)
	}
}
