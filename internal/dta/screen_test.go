package dta

import (
	"bytes"
	"encoding/json"
	"testing"

	"teva/internal/fpu"
	"teva/internal/vscale"
)

func TestOpSlackMatchesStageReports(t *testing.T) {
	f := testFPU
	for _, op := range []fpu.Op{fpu.DMul, fpu.DAdd, fpu.SI2F, fpu.DDiv} {
		for _, scale := range []float64{1.0, testModel.ScaleFor(vscale.VR15)} {
			want := f.CLK
			for _, r := range f.Pipeline(op).STA() {
				if s := f.CLK - scale*r.WorstDelay; s < want {
					want = s
				}
			}
			if got := OpSlack(f, op, scale); got != want {
				t.Fatalf("%s at scale %v: OpSlack %v, direct %v", op, scale, got, want)
			}
		}
	}
	// The padded multiplier mantissa stage sits at 1.0x CLK, so its
	// nominal slack is ~0 and any voltage reduction drives it negative;
	// the unpadded single-precision conversion keeps comfortable slack
	// even at VR20.
	vr20 := testModel.ScaleFor(vscale.VR20)
	if s := OpSlack(f, fpu.DMul, 1.0); s < -1 || s > 10 {
		t.Fatalf("DMul nominal slack %v, want ~0", s)
	}
	if s := OpSlack(f, fpu.DMul, vr20); s >= 0 {
		t.Fatalf("DMul VR20 slack %v, want negative", s)
	}
	if s := OpSlack(f, fpu.SI2F, vr20); s <= 0 {
		t.Fatalf("SI2F VR20 slack %v, want positive", s)
	}
}

func TestScreensGating(t *testing.T) {
	f := testFPU
	vr15 := testModel.ScaleFor(vscale.VR15)
	off := ScreenConfig{}
	if off.Screens(f, fpu.SI2F, vr15) {
		t.Fatal("disabled screen screened an op")
	}
	on := ScreenConfig{Enabled: true}
	if !on.Screens(f, fpu.SI2F, vr15) {
		t.Fatal("slack-cleared op not screened")
	}
	if on.Screens(f, fpu.DMul, vr15) {
		t.Fatal("near-critical op screened")
	}
	// A guardband above the op's actual slack must unscreen it.
	tight := ScreenConfig{Enabled: true, Guardband: OpSlack(f, fpu.SI2F, vr15) + 1}
	if tight.Screens(f, fpu.SI2F, vr15) {
		t.Fatal("guardband not enforced")
	}
}

// TestScreenedSummaryMatchesSimulation is the soundness anchor at the
// summary level: for a slack-cleared op, the synthesized summary must be
// byte-identical (JSON included, since that is what the artifact store
// and the CSV exports consume) to the one dense DTA produces.
func TestScreenedSummaryMatchesSimulation(t *testing.T) {
	f := testFPU
	vr20 := testModel.ScaleFor(vscale.VR20)
	for _, op := range []fpu.Op{fpu.SI2F, fpu.SF2I} {
		if !(ScreenConfig{Enabled: true}).Screens(f, op, vr20) {
			t.Fatalf("%s unexpectedly fails the screen at VR20", op)
		}
		const n = 200
		recs := AnalyzeStreamAt(f, op, vr20, false, randPairs(op, n, 99), 4)
		simulated := Summarize(op, recs)
		synthetic := ScreenedSummary(op, n)
		sj, err := json.Marshal(simulated)
		if err != nil {
			t.Fatal(err)
		}
		yj, err := json.Marshal(synthetic)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sj, yj) {
			t.Fatalf("%s: screened summary differs from simulation:\nsim  %s\nsynt %s", op, sj, yj)
		}
	}
}
