package dta

import (
	"teva/internal/fpu"
)

// Slack-driven DTA screening.
//
// Dynamic timing analysis at delay scale s flags an instruction faulty
// only when some stage's dynamic arrival exceeds the capture deadline
// CLK - Setup*s. Every dynamic arrival is bounded by the static worst
// case: arrival + Setup*s <= s * WorstDelay(nominal STA) — the invariant
// the sta package's differential tests pin against both scalar engines.
// So when the scaled static worst delay of every stage of an op's
// pipeline still fits the clock with margin to spare,
//
//	CLK - s*WorstDelay(stage) >= guardband  for all stages,
//
// the op cannot produce a single timing error at that corner, and its
// dense DTA (thousands of gate-level walks) can be skipped outright: the
// summary of an error-free stream is fully determined by the op and the
// sample count. Near-critical ops (the padded mantissa and round stages)
// fail the screen and proceed to dense DTA unchanged.

// Metric names published by the screening layer: ops considered,
// ops skipped by the screen, and ops cross-checked in validation mode.
const (
	MetricScreenChecked   = "dta.screen_checked"
	MetricScreenedOps     = "dta.screened_ops"
	MetricScreenValidated = "dta.screen_validated"
)

// ScreenConfig configures slack-driven screening of DTA characterization.
type ScreenConfig struct {
	// Enabled turns the screen on; when false the other fields are inert.
	Enabled bool
	// Guardband is the minimum positive slack, in ps, an op's worst stage
	// must clear at the analyzed corner before the op is screened. 0 is
	// sound by the STA bound; a positive guardband adds engineering margin
	// on top.
	Guardband float64
	// Validate keeps the dense DTA for screened ops and cross-checks that
	// the simulation agrees (zero faulty instructions): the screen's
	// soundness check, used by CI to prove screened output byte-identical.
	Validate bool
}

// screenKey memoizes per-op nominal stage worst delays in the FPU's
// scratch. The key type is unexported, so no other package can collide.
type screenKey struct{ op fpu.Op }

// stageWorsts returns the op's nominal per-stage STA worst delays,
// computing them once per FPU (concurrent first calls may duplicate the
// analysis; the result is deterministic, so either copy is valid).
func stageWorsts(f *fpu.FPU, op fpu.Op) []float64 {
	if v, ok := f.Scratch().Load(screenKey{op}); ok {
		return v.([]float64)
	}
	reports := f.Pipeline(op).STA()
	worsts := make([]float64, len(reports))
	for i, r := range reports {
		worsts[i] = r.WorstDelay
	}
	v, _ := f.Scratch().LoadOrStore(screenKey{op}, worsts)
	return v.([]float64)
}

// OpSlack returns the op's worst stage slack at the FPU's calibrated
// clock with every delay inflated by scale: min over the op's pipeline
// stages of CLK - scale*WorstDelay(stage). Negative once some stage's
// scaled static critical path no longer fits the clock. The underlying
// nominal STA runs once per (FPU, op); subsequent queries at any scale
// are a few multiplies.
func OpSlack(f *fpu.FPU, op fpu.Op, scale float64) float64 {
	worsts := stageWorsts(f, op)
	slack := f.CLK - scale*worsts[0]
	for _, w := range worsts[1:] {
		if s := f.CLK - scale*w; s < slack {
			slack = s
		}
	}
	return slack
}

// Screens reports whether the op clears the screen at the scale: enabled,
// and every stage's scaled static worst delay fits the clock with at
// least the guardband to spare.
func (c ScreenConfig) Screens(f *fpu.FPU, op fpu.Op, scale float64) bool {
	return c.Enabled && OpSlack(f, op, scale) >= c.Guardband
}

// ScreenedSummary synthesizes the summary of an error-free n-instruction
// stream: byte-identical (including JSON encoding) to Summarize over n
// records with zero fault masks, which is what dense DTA of a screened op
// is guaranteed to produce.
func ScreenedSummary(op fpu.Op, n int) *Summary {
	rw := op.ResultWidth()
	return &Summary{
		Op:        op,
		Total:     n,
		BitErrors: make([]int, rw),
		FlipHist:  make([]int, rw+1),
	}
}
