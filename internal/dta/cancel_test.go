package dta

import (
	"context"
	"errors"
	"testing"

	"teva/internal/fpu"
	"teva/internal/vscale"
)

func TestAnalyzeStreamCtxCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pairs := randPairs(fpu.DMul, 2*cancelChunk, 7)
	recs, err := AnalyzeStreamCtx(ctx, testFPU, fpu.DMul,
		testModel.ScaleFor(vscale.VR20), EngineWide, pairs, 2, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if len(recs) != len(pairs) {
		t.Fatalf("record slice length %d", len(recs))
	}
	for i, r := range recs {
		if r.A != 0 || r.B != 0 || r.Golden != 0 {
			t.Fatalf("record %d analyzed after cancellation: %+v", i, r)
		}
	}
}

func TestAnalyzeStreamCtxMatchesUncanceledPath(t *testing.T) {
	pairs := randPairs(fpu.DAdd, 700, 3)
	scale := testModel.ScaleFor(vscale.VR20)
	want := AnalyzeStreamObs(testFPU, fpu.DAdd, scale, EngineWide, pairs, 1, nil)
	got, err := AnalyzeStreamCtx(context.Background(), testFPU, fpu.DAdd, scale, EngineWide, pairs, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("record %d diverges under ctx path: %+v vs %+v", i, want[i], got[i])
		}
	}
}
