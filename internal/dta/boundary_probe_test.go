package dta

import (
	"fmt"
	"testing"

	"teva/internal/fpu"
)

func TestProbeShardBoundaryAtStress(t *testing.T) {
	if testing.Short() {
		t.Skip("shard-boundary stress probe")
	}
	for _, scale := range []float64{1.15, 1.25, 1.4} {
		pairs := randPairs(fpu.DMul, 601, 47)
		serial := AnalyzeStreamAt(testFPU, fpu.DMul, scale, false, pairs, 1)
		errs := 0
		for _, r := range serial {
			if r.Erroneous() {
				errs++
			}
		}
		diverged := 0
		for _, workers := range []int{2, 3, 5, 8} {
			par := AnalyzeStreamAt(testFPU, fpu.DMul, scale, false, pairs, workers)
			for i := range serial {
				if serial[i] != par[i] {
					diverged++
					fmt.Printf("scale=%g workers=%d record %d diverges\n", scale, workers, i)
					break
				}
			}
		}
		fmt.Printf("scale=%g: %d/%d erroneous, diverged in %d/4 worker configs\n", scale, errs, len(pairs), diverged)
	}
}
