// Package dta implements dynamic timing analysis (Section III-A of the
// paper): two simulation instances of the gate-level FPU run in parallel —
// a nominal-voltage golden instance (zero-delay functional) and a
// reduced-voltage instance (gate delays inflated by the alpha-power
// corner) — and each instruction's destination-register outputs are
// XOR-compared bit by bit to yield timing-error bitmasks.
//
// The undervolted instance models the pipeline faithfully: every stage's
// inputs transition from the values the stage's input register held on the
// previous cycle (the previous instruction in that stage, or the previous
// iteration for the divide recurrence), and erroneously captured values
// propagate into downstream stages, so multi-stage error interaction is
// captured.
package dta

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"teva/internal/fpu"
	"teva/internal/logicsim"
	"teva/internal/obs"
	"teva/internal/timingsim"
	"teva/internal/vscale"
)

// Record is the DTA outcome for one executed instruction.
type Record struct {
	// A, B are the operand encodings.
	A, B uint64
	// Golden is the architecturally correct result.
	Golden uint64
	// Faulty is the result captured by the undervolted instance.
	Faulty uint64
	// Mask is Golden XOR Faulty: set bits are timing-corrupted output
	// bits. Zero means no timing error manifested.
	Mask uint64
	// MaxArrivalPS is the worst (scaled) signal arrival observed in any
	// stage while executing this instruction, a dynamic-timing-slack
	// diagnostic.
	MaxArrivalPS float64
}

// Erroneous reports whether the instruction suffered a timing error.
func (r Record) Erroneous() bool { return r.Mask != 0 }

// Pair is one operand pair for the analyzed instruction type.
type Pair struct{ A, B uint64 }

// Engine selects the reduced-voltage timing engine. The zero value is
// EngineWide, the fastest engine; all three produce the same Records for
// chain/levelized semantics (Wide is bit-exact against Fast by
// construction, and differential tests enforce it), so the choice is a
// speed/fidelity knob, not a correctness one.
type Engine uint8

const (
	// EngineWide is the 64-lane levelized engine: one circuit walk per
	// pipeline cycle times up to 64 consecutive instructions. Bit-exact
	// against EngineFast; the default.
	EngineWide Engine = iota
	// EngineFast is the scalar levelized arrival engine (one walk per
	// instruction), kept as the differential reference for EngineWide.
	EngineFast
	// EngineExact is the event-driven engine with inertial delays and
	// glitch-accurate captures — the slow reference. Glitch handling is
	// inherently serial (event order couples lanes), so it has no wide
	// variant.
	EngineExact
)

var engineNames = map[Engine]string{
	EngineWide:  "wide",
	EngineFast:  "fast",
	EngineExact: "exact",
}

func (e Engine) String() string {
	if n, ok := engineNames[e]; ok {
		return n
	}
	return fmt.Sprintf("Engine(%d)", uint8(e))
}

// Exact reports whether the engine models glitch-accurate captures. It is
// also the provenance bit for cached DTA summaries: wide and fast produce
// identical records, so they share cache entries.
func (e Engine) Exact() bool { return e == EngineExact }

// ParseEngine maps a CLI flag value ("wide", "fast", "exact") to an
// Engine.
func ParseEngine(s string) (Engine, error) {
	for e, n := range engineNames {
		if n == s {
			return e, nil
		}
	}
	return EngineWide, fmt.Errorf("dta: unknown timing engine %q (wide, fast, exact)", s)
}

// engineFor maps the legacy exact flag onto an engine.
func engineFor(exact bool) Engine {
	if exact {
		return EngineExact
	}
	return EngineWide
}

// Analyzer runs DTA for one instruction type at one voltage corner.
type Analyzer struct {
	p     *fpu.Pipeline
	clk   float64
	scale float64
	eng   Engine
	// Per-cycle (stage-repeat expanded) engines and state. The golden
	// instance runs on the 64-wide bit-parallel engine: one circuit walk
	// per cycle evaluates up to 64 operand pairs. Every engine shares the
	// stage's cached compiled IR, so parallel shards re-derive nothing.
	golden  []*logicsim.WideSim
	stages  []*fpu.Stage
	wordBuf [][]uint64 // 64-lane words per cycle boundary (golden + wide faulty)
	// Scalar faulty path (EngineFast, EngineExact). All buffers are
	// preallocated: one undervolted instruction allocates nothing.
	timing []timingsim.Runner
	prevIn [][]bool // faulty-domain previous input per expanded cycle
	curOut [][]bool // faulty-domain captured output per expanded cycle
	inBuf  []bool   // rank-0 input vector, reused per pair
	// Wide faulty path (EngineWide): the undervolted instance also runs
	// 64 lanes per walk. Lane L's previous input is lane L-1's current
	// one (consecutive instructions), so the per-cycle transition words
	// are the current words shifted up one lane; carry holds the last
	// analyzed instruction's input bits per cycle (the lane-0 carry-in),
	// which replays the exact serial history across batch boundaries.
	wtiming   []*timingsim.WideFastSim
	carry     [][]uint64 // per cycle, per input net: previous batch's last lane (bit 0)
	widePrev  []uint64   // lane-shifted transition scratch, max stage width
	warmPairs [1]Pair    // scratch for Warm's single-lane batch
	warmRec   [1]Record  // scratch for Warm's discarded record
	haveHot   bool
}

// New returns an analyzer for the op's pipeline on the given FPU at the
// given voltage-reduction level. When exact is true the event-driven
// timing engine is used instead of the (wide) levelized engine.
func New(f *fpu.FPU, op fpu.Op, model vscale.Model, level vscale.VRLevel, exact bool) *Analyzer {
	return NewEngineAt(f, op, model.ScaleFor(level), engineFor(exact))
}

// NewEngine is New with an explicit engine choice.
func NewEngine(f *fpu.FPU, op fpu.Op, model vscale.Model, level vscale.VRLevel, eng Engine) *Analyzer {
	return NewEngineAt(f, op, model.ScaleFor(level), eng)
}

// NewAt returns an analyzer at an arbitrary delay-scale factor. This is
// how the other delay-increase sources of the paper's Section VI
// (overclocking, temperature, aging — see vscale.StressCorner) reuse the
// same analysis path.
func NewAt(f *fpu.FPU, op fpu.Op, scale float64, exact bool) *Analyzer {
	return NewEngineAt(f, op, scale, engineFor(exact))
}

// NewEngineAt is NewAt with an explicit engine choice.
func NewEngineAt(f *fpu.FPU, op fpu.Op, scale float64, eng Engine) *Analyzer {
	p := f.Pipeline(op)
	a := &Analyzer{p: p, clk: f.CLK, scale: scale, eng: eng}
	// The golden engines run strictly cycle by cycle and keep no state
	// across Runs, so stage repeats share one engine per distinct stage.
	gByStage := make(map[*fpu.Stage]*logicsim.WideSim, len(p.Stages))
	for _, s := range p.Stages {
		gByStage[s] = logicsim.NewWide(s.N.Compiled())
	}
	maxIn := 0
	if eng == EngineWide {
		// Stage repeats rerun the same circuit, and the analyzer runs its
		// cycles strictly in order, so one engine per distinct stage on
		// one shared scratch (sized for the widest netlist) serves every
		// expanded cycle. Per-cycle state (the lane-shift carries) stays
		// outside the engines.
		maxNets := 0
		for _, s := range p.Stages {
			if n := s.N.Compiled().NumNets; n > maxNets {
				maxNets = n
			}
		}
		ws := timingsim.NewWideScratch(maxNets)
		byStage := make(map[*fpu.Stage]*timingsim.WideFastSim, len(p.Stages))
		for _, s := range p.Stages {
			byStage[s] = timingsim.NewWideFastShared(s.N.Compiled(), scale, ws)
		}
		for _, s := range p.Stages {
			ins := len(s.N.Inputs())
			if ins > maxIn {
				maxIn = ins
			}
			for r := 0; r < s.Repeat; r++ {
				a.stages = append(a.stages, s)
				a.golden = append(a.golden, gByStage[s])
				a.wtiming = append(a.wtiming, byStage[s])
				a.carry = append(a.carry, make([]uint64, ins))
				a.wordBuf = append(a.wordBuf, make([]uint64, ins))
			}
		}
	} else {
		for _, s := range p.Stages {
			c := s.N.Compiled()
			ins := len(s.N.Inputs())
			if ins > maxIn {
				maxIn = ins
			}
			for r := 0; r < s.Repeat; r++ {
				a.stages = append(a.stages, s)
				a.golden = append(a.golden, gByStage[s])
				if eng == EngineExact {
					a.timing = append(a.timing, timingsim.NewExact(c, scale))
				} else {
					a.timing = append(a.timing, timingsim.NewFast(c, scale))
				}
				a.prevIn = append(a.prevIn, make([]bool, ins))
				a.curOut = append(a.curOut, make([]bool, len(s.N.Outputs())))
				a.wordBuf = append(a.wordBuf, make([]uint64, ins))
			}
		}
	}
	last := a.stages[len(a.stages)-1]
	a.wordBuf = append(a.wordBuf, make([]uint64, len(last.N.Outputs())))
	if eng == EngineWide {
		a.widePrev = make([]uint64, maxIn)
	} else {
		a.inBuf = make([]bool, len(a.stages[0].N.Inputs()))
	}
	return a
}

// Reset returns the analyzer to its just-constructed state: cold history,
// zero lane-shift carries, zero scalar previous-input vectors. A reset
// analyzer produces byte-identical records to a freshly built one, which
// is what lets AnalyzeStream pool analyzers across calls.
func (a *Analyzer) Reset() {
	a.haveHot = false
	for _, c := range a.carry {
		clear(c)
	}
	for _, p := range a.prevIn {
		clear(p)
	}
}

// poolKey identifies one analyzer configuration inside an FPU's scratch
// cache. Unexported so no other package's scratch entries can collide.
type poolKey struct {
	op    fpu.Op
	scale float64
	eng   Engine
}

// getAnalyzer fetches a pooled analyzer for the configuration (resetting
// it) or builds a fresh one. Engine construction is ~1MB of arrival/lane
// buffers per analyzer; characterization sweeps call AnalyzeStream
// hundreds of times per FPU, so pooling keeps the steady state
// allocation-free. The pool lives on the FPU so retired designs are
// collectable.
func getAnalyzer(f *fpu.FPU, op fpu.Op, scale float64, eng Engine) (*Analyzer, *sync.Pool) {
	pi, _ := f.Scratch().LoadOrStore(poolKey{op, scale, eng}, &sync.Pool{})
	pool := pi.(*sync.Pool)
	if v := pool.Get(); v != nil {
		a := v.(*Analyzer)
		a.Reset()
		return a, pool
	}
	return NewEngineAt(f, op, scale, eng), pool
}

// Op returns the analyzed instruction.
func (a *Analyzer) Op() fpu.Op { return a.p.Op }

// Scale returns the corner's delay inflation.
func (a *Analyzer) Scale() float64 { return a.scale }

// Warm primes the pipeline history with an operand pair without recording
// a result. Analyze warms automatically with its first pair when the
// analyzer is cold.
func (a *Analyzer) Warm(pair Pair) {
	if a.eng == EngineWide {
		a.warmPairs[0] = pair
		a.packBatch(a.warmPairs[:])
		a.faultyBatch(a.warmPairs[:], a.warmRec[:])
		return
	}
	a.faultyStep(pair)
}

// Analyze runs one instruction through both instances and returns its
// record. Consecutive calls model back-to-back instructions: each stage's
// input transition is from the previous call's values.
func (a *Analyzer) Analyze(pair Pair) Record {
	var recs [1]Record
	a.AnalyzeBatch([]Pair{pair}, recs[:])
	return recs[0]
}

// AnalyzeBatch analyzes consecutive instructions into recs (len(recs)
// must equal len(pairs)). The golden instance evaluates 64 pairs per
// circuit walk; the undervolted instance replays the same serial
// transition history a pair-at-a-time loop would, so the records are
// identical to repeated Analyze calls.
//
// This is the DTA stream's per-instruction engine loop: AnalyzeStream
// shards call it for every 64-pair window of the workload, so it and
// everything it reaches must not allocate in steady state (the
// AllocsPerRun tests measure it; the hotalloc analyzer proves it).
//
//teva:hotpath
func (a *Analyzer) AnalyzeBatch(pairs []Pair, recs []Record) {
	if len(pairs) != len(recs) {
		panic("dta: AnalyzeBatch length mismatch")
	}
	if len(pairs) == 0 {
		return
	}
	if !a.haveHot {
		a.Warm(pairs[0])
	}
	for lo := 0; lo < len(pairs); lo += 64 {
		hi := lo + 64
		if hi > len(pairs) {
			hi = len(pairs)
		}
		if a.eng == EngineWide {
			// One packing serves both instances: goldenBatch only reads
			// the rank-0 words, faultyBatch consumes (and then clobbers)
			// them afterwards.
			a.packBatch(pairs[lo:hi])
			a.goldenBatch(pairs[lo:hi], recs[lo:hi])
			a.faultyBatch(pairs[lo:hi], recs[lo:hi])
			for i := lo; i < hi; i++ {
				rec := &recs[i]
				rec.A, rec.B = pairs[i].A, pairs[i].B
				rec.Mask = rec.Golden ^ rec.Faulty
			}
			continue
		}
		a.goldenBatch(pairs[lo:hi], recs[lo:hi])
		for i := lo; i < hi; i++ {
			rec := &recs[i]
			rec.A, rec.B = pairs[i].A, pairs[i].B
			rec.Faulty, rec.MaxArrivalPS = a.faultyStep(pairs[i])
			rec.Mask = rec.Golden ^ rec.Faulty
		}
	}
}

// packBatch packs the pairs' operand encodings into the rank-0 lane words
// (wordBuf[0]) with one 64x64 bit transpose per operand, lanes beyond
// len(pairs) zero.
func (a *Analyzer) packBatch(pairs []Pair) {
	op := a.p.Op
	w := op.OperandWidth()
	words := a.wordBuf[0]
	var rows [64]uint64
	for lane, pair := range pairs {
		rows[lane] = pair.A
	}
	logicsim.Transpose64(&rows)
	copy(words[:w], rows[:w])
	packed := w
	if op.NumOperands() == 2 {
		for lane := range rows {
			if lane < len(pairs) {
				rows[lane] = pairs[lane].B
			} else {
				rows[lane] = 0
			}
		}
		logicsim.Transpose64(&rows)
		copy(words[w:2*w], rows[:w])
		packed = 2 * w
	}
	for i := packed; i < len(words); i++ {
		words[i] = 0
	}
}

// goldenBatch runs the golden (nominal, zero-delay) instance for up to 64
// packed pairs (see packBatch) in one 64-wide walk per pipeline cycle,
// filling recs[i].Golden.
func (a *Analyzer) goldenBatch(pairs []Pair, recs []Record) {
	if a.eng != EngineWide {
		a.packBatch(pairs)
	}
	for ci, g := range a.golden {
		g.Run(a.wordBuf[ci])
		g.Outputs(a.wordBuf[ci+1])
	}
	final := a.wordBuf[len(a.wordBuf)-1]
	rw := a.p.Op.ResultWidth()
	var rows [64]uint64
	copy(rows[:], final[:rw])
	logicsim.Transpose64(&rows)
	for lane := range pairs {
		recs[lane].Golden = rows[lane]
	}
}

// faultyBatch executes up to 64 consecutive instructions in the
// undervolted domain with one wide walk per pipeline cycle, filling
// recs[i].Faulty and recs[i].MaxArrivalPS. The transition history is the
// exact serial one: lane L's previous stage input is lane L-1's current
// one (the preceding instruction), realized by shifting each cycle's
// input words up one lane with a.carry supplying lane 0 across batch
// boundaries. Lanes past len(pairs) are forced transition-free so a
// short batch costs (and records) nothing extra.
func (a *Analyzer) faultyBatch(pairs []Pair, recs []Record) {
	a.haveHot = true
	n := len(pairs)
	lib := a.stages[0].N.Lib
	inputArrival := lib.ClockToQ * a.scale
	deadline := a.clk - lib.Setup*a.scale
	active := ^uint64(0) >> uint(64-n)
	for i := range recs[:n] {
		recs[i].MaxArrivalPS = 0
	}
	for ci := range a.stages {
		cur := a.wordBuf[ci]
		prev := a.widePrev[:len(cur)]
		carry := a.carry[ci]
		for j, cw := range cur {
			pw := cw<<1 | carry[j]
			// Inactive lanes adopt their previous value: no transition,
			// no toggles, no arrival work.
			cw = cw&active | pw&^active
			cur[j] = cw
			prev[j] = pw
			carry[j] = cw >> uint(n-1) & 1
		}
		sm := a.wtiming[ci].Run(prev, cur, inputArrival, deadline)
		for lane := 0; lane < n; lane++ {
			if wa := sm.WorstArrival[lane]; wa > recs[lane].MaxArrivalPS {
				recs[lane].MaxArrivalPS = wa
			}
		}
		// Erroneously captured values feed the next stage, lane by lane.
		copy(a.wordBuf[ci+1], sm.Captured)
	}
	final := a.wordBuf[len(a.wordBuf)-1]
	rw := a.p.Op.ResultWidth()
	var rows [64]uint64
	copy(rows[:], final[:rw])
	logicsim.Transpose64(&rows)
	for lane := 0; lane < n; lane++ {
		recs[lane].Faulty = rows[lane]
	}
}

// faultyStep executes one instruction in the undervolted domain on a
// scalar engine, returning the captured result encoding and the worst
// arrival observed.
func (a *Analyzer) faultyStep(pair Pair) (faulty uint64, maxArrivalPS float64) {
	a.haveHot = true
	lib := a.stages[0].N.Lib
	inputArrival := lib.ClockToQ * a.scale
	deadline := a.clk - lib.Setup*a.scale

	faultyIn := a.packInputs(pair)
	for ci := range a.stages {
		// Timing simulation from the previous cycle's (faulty-domain)
		// stage inputs to the current ones.
		//teva:allow hotalloc -- reviewed: Runner dispatch picks FastSim/Exact; both are steady-state alloc-free (AllocsPerRun tests)
		sample := a.timing[ci].Run(a.prevIn[ci], faultyIn, inputArrival, deadline)
		if sample.WorstArrival > maxArrivalPS {
			maxArrivalPS = sample.WorstArrival
		}
		// The sample is only valid until the engine's next Run; copy the
		// captured outputs into this cycle's reusable buffer before the
		// next stage overwrites them.
		copy(a.curOut[ci], sample.Captured)
		copy(a.prevIn[ci], faultyIn)
		faultyIn = a.curOut[ci]
	}
	return logicsim.UnpackOutputs(faultyIn, 0, a.p.Op.ResultWidth()), maxArrivalPS
}

// packInputs builds the rank-0 input vector into the reusable a.inBuf.
func (a *Analyzer) packInputs(pair Pair) []bool {
	op := a.p.Op
	in := a.inBuf
	clear(in)
	w := op.OperandWidth()
	logicsim.PackInputs(in, 0, w, pair.A)
	if op.NumOperands() == 2 {
		logicsim.PackInputs(in, w, w, pair.B)
	}
	return in
}

// AnalyzeStream runs DTA over a stream of operand pairs, sharding across
// workers. Pipeline history couples consecutive pairs, so every shard but
// the first warms up on the previous shard's last pair — the same
// transition a strictly serial run would see at that position — which
// makes the returned records identical for any worker count. Results are
// returned in input order.
func AnalyzeStream(f *fpu.FPU, op fpu.Op, model vscale.Model, level vscale.VRLevel, exact bool, pairs []Pair, workers int) []Record {
	return AnalyzeStreamAt(f, op, model.ScaleFor(level), exact, pairs, workers)
}

// AnalyzeStreamAt is AnalyzeStream at an arbitrary delay-scale factor.
func AnalyzeStreamAt(f *fpu.FPU, op fpu.Op, scale float64, exact bool, pairs []Pair, workers int) []Record {
	return AnalyzeStreamObs(f, op, scale, engineFor(exact), pairs, workers, nil)
}

// Metric names published by AnalyzeStreamObs. A "cycle" here is one
// expanded pipeline cycle (stage repeats included): instructions ×
// sum(Repeat) over the op's stages.
const (
	MetricStreamCalls = "dta.stream_calls"
	MetricPairs       = "dta.pairs_analyzed"
	MetricCycles      = "dta.cycles_analyzed"
	MetricViolations  = "dta.endpoint_violations"
	MetricShards      = "dta.shards"
)

// AnalyzeStreamObs is AnalyzeStreamAt with metrics: pairs/cycles analyzed,
// endpoint (output-mask) violations, and shard fan-out are accumulated on
// m. All counts are pure functions of the inputs — worker scheduling
// cannot change them — so snapshots stay deterministic. A nil registry
// records nothing.
func AnalyzeStreamObs(f *fpu.FPU, op fpu.Op, scale float64, eng Engine, pairs []Pair, workers int, m *obs.Registry) []Record {
	records, _ := AnalyzeStreamCtx(context.Background(), f, op, scale, eng, pairs, workers, m)
	return records
}

// cancelChunk is how many pairs a shard analyzes between cancellation
// checks. Small enough that a canceled matrix run stops within
// milliseconds, large enough that the check is free against the cost of a
// gate-level walk.
const cancelChunk = 256

// AnalyzeStreamCtx is AnalyzeStreamObs with cooperative cancellation:
// every shard checks ctx between cancelChunk-sized batches and abandons
// the remainder once ctx is done. On cancellation the partially filled
// records are returned alongside ctx.Err(); metrics are published only
// for runs that complete, so interrupted runs cannot skew deterministic
// snapshots. The success path is byte-identical to AnalyzeStreamObs for
// any worker count.
func AnalyzeStreamCtx(ctx context.Context, f *fpu.FPU, op fpu.Op, scale float64, eng Engine, pairs []Pair, workers int, m *obs.Registry) ([]Record, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pairs) {
		workers = len(pairs)
	}
	records := make([]Record, len(pairs))
	if len(pairs) == 0 {
		return records, ctx.Err()
	}
	sp := m.Phase("dta")
	chunk := (len(pairs) + workers - 1) / workers
	shards := 0
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(pairs) {
			hi = len(pairs)
		}
		if lo >= hi {
			break
		}
		shards++
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			a, pool := getAnalyzer(f, op, scale, eng)
			defer pool.Put(a)
			if lo > 0 {
				// Reproduce the serial history at the shard boundary: the
				// transition into pairs[lo] starts from the previous pair,
				// not from a pairs[lo]→pairs[lo] self-transition.
				a.Warm(pairs[lo-1])
			}
			for s := lo; s < hi; s += cancelChunk {
				if ctx.Err() != nil {
					return
				}
				e := s + cancelChunk
				if e > hi {
					e = hi
				}
				a.AnalyzeBatch(pairs[s:e], records[s:e])
			}
		}(lo, hi)
	}
	wg.Wait()
	sp.End()
	if err := ctx.Err(); err != nil {
		return records, err
	}
	if m != nil {
		cyclesPerPair := 0
		for _, s := range f.Pipeline(op).Stages {
			cyclesPerPair += s.Repeat
		}
		violations := int64(0)
		for i := range records {
			if records[i].Mask != 0 {
				violations++
			}
		}
		m.Counter(MetricStreamCalls).Inc()
		m.Counter(MetricPairs).Add(int64(len(pairs)))
		m.Counter(MetricCycles).Add(int64(len(pairs) * cyclesPerPair))
		m.Counter(MetricViolations).Add(violations)
		m.Counter(MetricShards).Add(int64(shards))
	}
	return records, nil
}

// Summary aggregates a record set into the statistics the error models are
// built from.
type Summary struct {
	// Op is the instruction type.
	Op fpu.Op
	// Total is the number of analyzed instructions.
	Total int
	// Faulty is how many suffered at least one corrupted bit.
	Faulty int
	// BitErrors[i] counts records whose bit i was corrupted.
	BitErrors []int
	// FlipHist[k] counts faulty records with exactly k corrupted bits
	// (index 0 unused).
	FlipHist []int
	// Masks holds every non-zero bitmask observed, in stream order (the
	// WA-model's empirical pool).
	Masks []uint64
}

// Summarize reduces records for model building.
func Summarize(op fpu.Op, records []Record) *Summary {
	rw := op.ResultWidth()
	s := &Summary{
		Op:        op,
		Total:     len(records),
		BitErrors: make([]int, rw),
		FlipHist:  make([]int, rw+1),
	}
	for _, r := range records {
		if r.Mask == 0 {
			continue
		}
		s.Faulty++
		s.Masks = append(s.Masks, r.Mask)
		flips := 0
		for b := 0; b < rw; b++ {
			if r.Mask>>uint(b)&1 == 1 {
				s.BitErrors[b]++
				flips++
			}
		}
		s.FlipHist[flips]++
	}
	return s
}

// ErrorRatio returns Eq. 2: faulty / total instructions.
func (s *Summary) ErrorRatio() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Faulty) / float64(s.Total)
}

// BER returns the per-output-bit error ratio (relative to all analyzed
// instructions), the quantity of Figures 6-8.
func (s *Summary) BER() []float64 {
	out := make([]float64, len(s.BitErrors))
	if s.Total == 0 {
		return out
	}
	for i, c := range s.BitErrors {
		out[i] = float64(c) / float64(s.Total)
	}
	return out
}

// MultiBitFraction returns the share of faulty instructions with more
// than one corrupted bit (Figure 5's headline statistic).
func (s *Summary) MultiBitFraction() float64 {
	if s.Faulty == 0 {
		return 0
	}
	multi := 0
	for k := 2; k < len(s.FlipHist); k++ {
		multi += s.FlipHist[k]
	}
	return float64(multi) / float64(s.Faulty)
}
