// Package dta implements dynamic timing analysis (Section III-A of the
// paper): two simulation instances of the gate-level FPU run in parallel —
// a nominal-voltage golden instance (zero-delay functional) and a
// reduced-voltage instance (gate delays inflated by the alpha-power
// corner) — and each instruction's destination-register outputs are
// XOR-compared bit by bit to yield timing-error bitmasks.
//
// The undervolted instance models the pipeline faithfully: every stage's
// inputs transition from the values the stage's input register held on the
// previous cycle (the previous instruction in that stage, or the previous
// iteration for the divide recurrence), and erroneously captured values
// propagate into downstream stages, so multi-stage error interaction is
// captured.
package dta

import (
	"context"
	"runtime"
	"sync"

	"teva/internal/fpu"
	"teva/internal/logicsim"
	"teva/internal/obs"
	"teva/internal/timingsim"
	"teva/internal/vscale"
)

// Record is the DTA outcome for one executed instruction.
type Record struct {
	// A, B are the operand encodings.
	A, B uint64
	// Golden is the architecturally correct result.
	Golden uint64
	// Faulty is the result captured by the undervolted instance.
	Faulty uint64
	// Mask is Golden XOR Faulty: set bits are timing-corrupted output
	// bits. Zero means no timing error manifested.
	Mask uint64
	// MaxArrivalPS is the worst (scaled) signal arrival observed in any
	// stage while executing this instruction, a dynamic-timing-slack
	// diagnostic.
	MaxArrivalPS float64
}

// Erroneous reports whether the instruction suffered a timing error.
func (r Record) Erroneous() bool { return r.Mask != 0 }

// Pair is one operand pair for the analyzed instruction type.
type Pair struct{ A, B uint64 }

// Analyzer runs DTA for one instruction type at one voltage corner.
type Analyzer struct {
	p     *fpu.Pipeline
	clk   float64
	scale float64
	// Per-cycle (stage-repeat expanded) engines and state. The golden
	// instance runs on the 64-wide bit-parallel engine: one circuit walk
	// per cycle evaluates up to 64 operand pairs. Every engine shares the
	// stage's cached compiled IR, so parallel shards re-derive nothing.
	golden  []*logicsim.WideSim
	timing  []timingsim.Runner
	stages  []*fpu.Stage
	prevIn  [][]bool   // faulty-domain previous input per expanded cycle
	wordBuf [][]uint64 // golden-domain 64-lane words per cycle boundary
	haveHot bool
}

// New returns an analyzer for the op's pipeline on the given FPU at the
// given voltage-reduction level. When exact is true the event-driven
// timing engine is used instead of the fast levelized engine.
func New(f *fpu.FPU, op fpu.Op, model vscale.Model, level vscale.VRLevel, exact bool) *Analyzer {
	return NewAt(f, op, model.ScaleFor(level), exact)
}

// NewAt returns an analyzer at an arbitrary delay-scale factor. This is
// how the other delay-increase sources of the paper's Section VI
// (overclocking, temperature, aging — see vscale.StressCorner) reuse the
// same analysis path.
func NewAt(f *fpu.FPU, op fpu.Op, scale float64, exact bool) *Analyzer {
	p := f.Pipeline(op)
	a := &Analyzer{p: p, clk: f.CLK, scale: scale}
	for _, s := range p.Stages {
		c := s.N.Compiled()
		for r := 0; r < s.Repeat; r++ {
			a.stages = append(a.stages, s)
			a.golden = append(a.golden, logicsim.NewWide(c))
			if exact {
				a.timing = append(a.timing, timingsim.NewExact(c, scale))
			} else {
				a.timing = append(a.timing, timingsim.NewFast(c, scale))
			}
			a.prevIn = append(a.prevIn, make([]bool, len(s.N.Inputs())))
			a.wordBuf = append(a.wordBuf, make([]uint64, len(s.N.Inputs())))
		}
	}
	last := a.stages[len(a.stages)-1]
	a.wordBuf = append(a.wordBuf, make([]uint64, len(last.N.Outputs())))
	return a
}

// Op returns the analyzed instruction.
func (a *Analyzer) Op() fpu.Op { return a.p.Op }

// Scale returns the corner's delay inflation.
func (a *Analyzer) Scale() float64 { return a.scale }

// Warm primes the pipeline history with an operand pair without recording
// a result. Analyze warms automatically with its first pair when the
// analyzer is cold.
func (a *Analyzer) Warm(pair Pair) { a.faultyStep(pair) }

// Analyze runs one instruction through both instances and returns its
// record. Consecutive calls model back-to-back instructions: each stage's
// input transition is from the previous call's values.
func (a *Analyzer) Analyze(pair Pair) Record {
	var recs [1]Record
	a.AnalyzeBatch([]Pair{pair}, recs[:])
	return recs[0]
}

// AnalyzeBatch analyzes consecutive instructions into recs (len(recs)
// must equal len(pairs)). The golden instance evaluates 64 pairs per
// circuit walk; the undervolted instance replays the same serial
// transition history a pair-at-a-time loop would, so the records are
// identical to repeated Analyze calls.
func (a *Analyzer) AnalyzeBatch(pairs []Pair, recs []Record) {
	if len(pairs) != len(recs) {
		panic("dta: AnalyzeBatch length mismatch")
	}
	if len(pairs) == 0 {
		return
	}
	if !a.haveHot {
		a.Warm(pairs[0])
	}
	for lo := 0; lo < len(pairs); lo += 64 {
		hi := lo + 64
		if hi > len(pairs) {
			hi = len(pairs)
		}
		a.goldenBatch(pairs[lo:hi], recs[lo:hi])
		for i := lo; i < hi; i++ {
			rec := &recs[i]
			rec.A, rec.B = pairs[i].A, pairs[i].B
			rec.Faulty, rec.MaxArrivalPS = a.faultyStep(pairs[i])
			rec.Mask = rec.Golden ^ rec.Faulty
		}
	}
}

// goldenBatch runs the golden (nominal, zero-delay) instance for up to 64
// pairs in one 64-wide walk per pipeline cycle, filling recs[i].Golden.
func (a *Analyzer) goldenBatch(pairs []Pair, recs []Record) {
	op := a.p.Op
	w := op.OperandWidth()
	words := a.wordBuf[0]
	clear(words)
	for lane, pair := range pairs {
		logicsim.PackLaneBits(words, lane, 0, w, pair.A)
		if op.NumOperands() == 2 {
			logicsim.PackLaneBits(words, lane, w, w, pair.B)
		}
	}
	for ci, g := range a.golden {
		g.Run(a.wordBuf[ci])
		g.Outputs(a.wordBuf[ci+1])
	}
	final := a.wordBuf[len(a.wordBuf)-1]
	rw := op.ResultWidth()
	for lane := range pairs {
		recs[lane].Golden = logicsim.UnpackLaneBits(final, lane, 0, rw)
	}
}

// faultyStep executes one instruction in the undervolted domain,
// returning the captured result encoding and the worst arrival observed.
func (a *Analyzer) faultyStep(pair Pair) (faulty uint64, maxArrivalPS float64) {
	a.haveHot = true
	lib := a.stages[0].N.Lib
	inputArrival := lib.ClockToQ * a.scale
	deadline := a.clk - lib.Setup*a.scale

	faultyIn := a.packInputs(pair)
	for ci := range a.stages {
		// Timing simulation from the previous cycle's (faulty-domain)
		// stage inputs to the current ones.
		sample := a.timing[ci].Run(a.prevIn[ci], faultyIn, inputArrival, deadline)
		if sample.WorstArrival > maxArrivalPS {
			maxArrivalPS = sample.WorstArrival
		}
		faultyOut := append([]bool(nil), sample.Captured...)
		copy(a.prevIn[ci], faultyIn)
		faultyIn = faultyOut
	}
	return logicsim.UnpackOutputs(faultyIn, 0, a.p.Op.ResultWidth()), maxArrivalPS
}

// packInputs builds the rank-0 input vector.
func (a *Analyzer) packInputs(pair Pair) []bool {
	op := a.p.Op
	in := make([]bool, len(a.stages[0].N.Inputs()))
	w := op.OperandWidth()
	logicsim.PackInputs(in, 0, w, pair.A)
	if op.NumOperands() == 2 {
		logicsim.PackInputs(in, w, w, pair.B)
	}
	return in
}

// AnalyzeStream runs DTA over a stream of operand pairs, sharding across
// workers. Pipeline history couples consecutive pairs, so every shard but
// the first warms up on the previous shard's last pair — the same
// transition a strictly serial run would see at that position — which
// makes the returned records identical for any worker count. Results are
// returned in input order.
func AnalyzeStream(f *fpu.FPU, op fpu.Op, model vscale.Model, level vscale.VRLevel, exact bool, pairs []Pair, workers int) []Record {
	return AnalyzeStreamAt(f, op, model.ScaleFor(level), exact, pairs, workers)
}

// AnalyzeStreamAt is AnalyzeStream at an arbitrary delay-scale factor.
func AnalyzeStreamAt(f *fpu.FPU, op fpu.Op, scale float64, exact bool, pairs []Pair, workers int) []Record {
	return AnalyzeStreamObs(f, op, scale, exact, pairs, workers, nil)
}

// Metric names published by AnalyzeStreamObs. A "cycle" here is one
// expanded pipeline cycle (stage repeats included): instructions ×
// sum(Repeat) over the op's stages.
const (
	MetricStreamCalls = "dta.stream_calls"
	MetricPairs       = "dta.pairs_analyzed"
	MetricCycles      = "dta.cycles_analyzed"
	MetricViolations  = "dta.endpoint_violations"
	MetricShards      = "dta.shards"
)

// AnalyzeStreamObs is AnalyzeStreamAt with metrics: pairs/cycles analyzed,
// endpoint (output-mask) violations, and shard fan-out are accumulated on
// m. All counts are pure functions of the inputs — worker scheduling
// cannot change them — so snapshots stay deterministic. A nil registry
// records nothing.
func AnalyzeStreamObs(f *fpu.FPU, op fpu.Op, scale float64, exact bool, pairs []Pair, workers int, m *obs.Registry) []Record {
	records, _ := AnalyzeStreamCtx(context.Background(), f, op, scale, exact, pairs, workers, m)
	return records
}

// cancelChunk is how many pairs a shard analyzes between cancellation
// checks. Small enough that a canceled matrix run stops within
// milliseconds, large enough that the check is free against the cost of a
// gate-level walk.
const cancelChunk = 256

// AnalyzeStreamCtx is AnalyzeStreamObs with cooperative cancellation:
// every shard checks ctx between cancelChunk-sized batches and abandons
// the remainder once ctx is done. On cancellation the partially filled
// records are returned alongside ctx.Err(); metrics are published only
// for runs that complete, so interrupted runs cannot skew deterministic
// snapshots. The success path is byte-identical to AnalyzeStreamObs for
// any worker count.
func AnalyzeStreamCtx(ctx context.Context, f *fpu.FPU, op fpu.Op, scale float64, exact bool, pairs []Pair, workers int, m *obs.Registry) ([]Record, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pairs) {
		workers = len(pairs)
	}
	records := make([]Record, len(pairs))
	if len(pairs) == 0 {
		return records, ctx.Err()
	}
	sp := m.Phase("dta")
	chunk := (len(pairs) + workers - 1) / workers
	shards := 0
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(pairs) {
			hi = len(pairs)
		}
		if lo >= hi {
			break
		}
		shards++
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			a := NewAt(f, op, scale, exact)
			if lo > 0 {
				// Reproduce the serial history at the shard boundary: the
				// transition into pairs[lo] starts from the previous pair,
				// not from a pairs[lo]→pairs[lo] self-transition.
				a.Warm(pairs[lo-1])
			}
			for s := lo; s < hi; s += cancelChunk {
				if ctx.Err() != nil {
					return
				}
				e := s + cancelChunk
				if e > hi {
					e = hi
				}
				a.AnalyzeBatch(pairs[s:e], records[s:e])
			}
		}(lo, hi)
	}
	wg.Wait()
	sp.End()
	if err := ctx.Err(); err != nil {
		return records, err
	}
	if m != nil {
		cyclesPerPair := 0
		for _, s := range f.Pipeline(op).Stages {
			cyclesPerPair += s.Repeat
		}
		violations := int64(0)
		for i := range records {
			if records[i].Mask != 0 {
				violations++
			}
		}
		m.Counter(MetricStreamCalls).Inc()
		m.Counter(MetricPairs).Add(int64(len(pairs)))
		m.Counter(MetricCycles).Add(int64(len(pairs) * cyclesPerPair))
		m.Counter(MetricViolations).Add(violations)
		m.Counter(MetricShards).Add(int64(shards))
	}
	return records, nil
}

// Summary aggregates a record set into the statistics the error models are
// built from.
type Summary struct {
	// Op is the instruction type.
	Op fpu.Op
	// Total is the number of analyzed instructions.
	Total int
	// Faulty is how many suffered at least one corrupted bit.
	Faulty int
	// BitErrors[i] counts records whose bit i was corrupted.
	BitErrors []int
	// FlipHist[k] counts faulty records with exactly k corrupted bits
	// (index 0 unused).
	FlipHist []int
	// Masks holds every non-zero bitmask observed, in stream order (the
	// WA-model's empirical pool).
	Masks []uint64
}

// Summarize reduces records for model building.
func Summarize(op fpu.Op, records []Record) *Summary {
	rw := op.ResultWidth()
	s := &Summary{
		Op:        op,
		Total:     len(records),
		BitErrors: make([]int, rw),
		FlipHist:  make([]int, rw+1),
	}
	for _, r := range records {
		if r.Mask == 0 {
			continue
		}
		s.Faulty++
		s.Masks = append(s.Masks, r.Mask)
		flips := 0
		for b := 0; b < rw; b++ {
			if r.Mask>>uint(b)&1 == 1 {
				s.BitErrors[b]++
				flips++
			}
		}
		s.FlipHist[flips]++
	}
	return s
}

// ErrorRatio returns Eq. 2: faulty / total instructions.
func (s *Summary) ErrorRatio() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Faulty) / float64(s.Total)
}

// BER returns the per-output-bit error ratio (relative to all analyzed
// instructions), the quantity of Figures 6-8.
func (s *Summary) BER() []float64 {
	out := make([]float64, len(s.BitErrors))
	if s.Total == 0 {
		return out
	}
	for i, c := range s.BitErrors {
		out[i] = float64(c) / float64(s.Total)
	}
	return out
}

// MultiBitFraction returns the share of faulty instructions with more
// than one corrupted bit (Figure 5's headline statistic).
func (s *Summary) MultiBitFraction() float64 {
	if s.Faulty == 0 {
		return 0
	}
	multi := 0
	for k := 2; k < len(s.FlipHist); k++ {
		multi += s.FlipHist[k]
	}
	return float64(multi) / float64(s.Faulty)
}
