package dta

import (
	"testing"

	"teva/internal/cell"
	"teva/internal/fpu"
	"teva/internal/prng"
	"teva/internal/vscale"
)

var (
	testFPU   = mustFPU()
	testModel = vscale.Default45nm()
)

func mustFPU() *fpu.FPU {
	f, err := fpu.New(cell.Default(), 0xF00D)
	if err != nil {
		panic(err)
	}
	return f
}

// randPairs draws uniformly random operand encodings for the op.
func randPairs(op fpu.Op, n int, seed uint64) []Pair {
	src := prng.New(seed)
	w := op.OperandWidth()
	mask := ^uint64(0)
	if w < 64 {
		mask = 1<<uint(w) - 1
	}
	pairs := make([]Pair, n)
	for i := range pairs {
		pairs[i] = Pair{A: src.Uint64() & mask, B: src.Uint64() & mask}
	}
	return pairs
}

func TestNominalVoltageIsErrorFree(t *testing.T) {
	for _, op := range []fpu.Op{fpu.DMul, fpu.DSub, fpu.DAdd, fpu.DI2F, fpu.SF2I} {
		a := New(testFPU, op, testModel, vscale.Nominal, false)
		for _, p := range randPairs(op, 200, 7) {
			rec := a.Analyze(p)
			if rec.Erroneous() {
				t.Fatalf("%s: timing error at nominal voltage: %+v", op, rec)
			}
			if rec.Golden != op.Golden(p.A, p.B) {
				t.Fatalf("%s: golden mismatch", op)
			}
		}
	}
}

func TestFaultyMatchesMask(t *testing.T) {
	a := New(testFPU, fpu.DMul, testModel, vscale.VR20, false)
	for _, p := range randPairs(fpu.DMul, 500, 11) {
		rec := a.Analyze(p)
		if rec.Golden^rec.Faulty != rec.Mask {
			t.Fatal("mask is not golden XOR faulty")
		}
	}
}

func TestErrorProfileMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("full error-profile sweep")
	}
	// The Figure 7 structure: fp-mul.d is the most error-prone op and
	// fails (rarely) already at VR15; fp-sub.d also fails at VR15;
	// fp-add.d and fp-div.d fail only at VR20; conversions and all
	// single-precision ops never fail at either corner.
	er := func(op fpu.Op, lv vscale.VRLevel, n int) float64 {
		recs := AnalyzeStream(testFPU, op, testModel, lv, false, randPairs(op, n, 13), 0)
		return Summarize(op, recs).ErrorRatio()
	}
	mul15 := er(fpu.DMul, vscale.VR15, 4000)
	if mul15 == 0 || mul15 > 0.05 {
		t.Errorf("fp-mul.d VR15 ER = %v, want small but nonzero", mul15)
	}
	mul20 := er(fpu.DMul, vscale.VR20, 2000)
	if mul20 <= mul15 {
		t.Errorf("fp-mul.d ER must grow with undervolting: VR15=%v VR20=%v", mul15, mul20)
	}
	sub20 := er(fpu.DSub, vscale.VR20, 2000)
	if sub20 == 0 || sub20 >= mul20 {
		t.Errorf("fp-sub.d VR20 ER = %v, want nonzero and below fp-mul.d's %v", sub20, mul20)
	}
	if add15 := er(fpu.DAdd, vscale.VR15, 2000); add15 != 0 {
		t.Errorf("fp-add.d VR15 ER = %v, want 0", add15)
	}
	if div15 := er(fpu.DDiv, vscale.VR15, 300); div15 != 0 {
		t.Errorf("fp-div.d VR15 ER = %v, want 0", div15)
	}
	if div20 := er(fpu.DDiv, vscale.VR20, 300); div20 == 0 {
		t.Errorf("fp-div.d VR20 ER = 0, want nonzero")
	}
	for _, op := range []fpu.Op{fpu.DI2F, fpu.DF2I, fpu.SMul, fpu.SAdd} {
		if e := er(op, vscale.VR20, 800); e != 0 {
			t.Errorf("%s VR20 ER = %v, want 0", op, e)
		}
	}
}

func TestMantissaBitsMoreErrorProne(t *testing.T) {
	// Figure 8's observation: mantissa bits carry higher BER than
	// exponent bits.
	recs := AnalyzeStream(testFPU, fpu.DMul, testModel, vscale.VR20, false,
		randPairs(fpu.DMul, 3000, 17), 0)
	sum := Summarize(fpu.DMul, recs)
	ber := sum.BER()
	var mant, exp float64
	for i := 0; i < 52; i++ {
		mant += ber[i]
	}
	mant /= 52
	for i := 52; i < 63; i++ {
		exp += ber[i]
	}
	exp /= 11
	if mant <= exp {
		t.Fatalf("mantissa mean BER %v not above exponent mean BER %v", mant, exp)
	}
}

func TestAnalyzeStreamMatchesSerial(t *testing.T) {
	pairs := randPairs(fpu.DSub, 300, 19)
	serial := AnalyzeStream(testFPU, fpu.DSub, testModel, vscale.VR20, false, pairs, 1)
	a := New(testFPU, fpu.DSub, testModel, vscale.VR20, false)
	for i, p := range pairs {
		rec := a.Analyze(p)
		if i == 0 {
			continue // the stream API warms on its first pair too
		}
		if rec.Golden != serial[i].Golden || rec.A != serial[i].A {
			t.Fatalf("stream/serial divergence at %d", i)
		}
	}
	parallel := AnalyzeStream(testFPU, fpu.DSub, testModel, vscale.VR20, false, pairs, 4)
	for i := range pairs {
		if parallel[i].Golden != serial[i].Golden {
			t.Fatalf("parallel golden mismatch at %d", i)
		}
	}
}

func TestSummarize(t *testing.T) {
	recs := []Record{
		{Mask: 0},
		{Mask: 0b101}, // 2 flips
		{Mask: 0b1},   // 1 flip
		{Mask: 0},
	}
	s := Summarize(fpu.DAdd, recs)
	if s.Total != 4 || s.Faulty != 2 {
		t.Fatalf("totals wrong: %+v", s)
	}
	if s.ErrorRatio() != 0.5 {
		t.Fatalf("ER = %v", s.ErrorRatio())
	}
	if s.BitErrors[0] != 2 || s.BitErrors[2] != 1 {
		t.Fatalf("bit errors wrong: %v", s.BitErrors)
	}
	if s.FlipHist[1] != 1 || s.FlipHist[2] != 1 {
		t.Fatalf("flip hist wrong: %v", s.FlipHist)
	}
	if s.MultiBitFraction() != 0.5 {
		t.Fatalf("multi-bit fraction %v", s.MultiBitFraction())
	}
	if len(s.Masks) != 2 {
		t.Fatalf("mask pool %v", s.Masks)
	}
	ber := s.BER()
	if ber[0] != 0.5 || ber[2] != 0.25 {
		t.Fatalf("BER %v", ber)
	}
	empty := Summarize(fpu.DAdd, nil)
	if empty.ErrorRatio() != 0 || empty.MultiBitFraction() != 0 {
		t.Fatal("empty summary must be zero")
	}
}

func TestExactEngineAgreesAtNominal(t *testing.T) {
	fast := New(testFPU, fpu.DMul, testModel, vscale.Nominal, false)
	exact := New(testFPU, fpu.DMul, testModel, vscale.Nominal, true)
	for _, p := range randPairs(fpu.DMul, 60, 23) {
		rf := fast.Analyze(p)
		re := exact.Analyze(p)
		if rf.Golden != re.Golden || rf.Faulty != re.Faulty {
			t.Fatalf("engines disagree at nominal for %+v", p)
		}
	}
}

func TestExactEngineSeesErrorsUndervolted(t *testing.T) {
	if testing.Short() {
		t.Skip("exact engine is slow")
	}
	recs := AnalyzeStream(testFPU, fpu.DMul, testModel, vscale.VR20, true,
		randPairs(fpu.DMul, 400, 29), 0)
	if Summarize(fpu.DMul, recs).ErrorRatio() == 0 {
		t.Fatal("exact engine found no VR20 errors in fp-mul.d")
	}
}

func TestWarmAndDeterminism(t *testing.T) {
	pairs := randPairs(fpu.DSub, 100, 31)
	run := func() []Record {
		a := New(testFPU, fpu.DSub, testModel, vscale.VR20, false)
		a.Warm(pairs[0])
		out := make([]Record, len(pairs))
		for i, p := range pairs {
			out[i] = a.Analyze(p)
		}
		return out
	}
	r1, r2 := run(), run()
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("DTA not deterministic at %d", i)
		}
	}
}

func TestFastAndExactAgreeOnERMagnitude(t *testing.T) {
	if testing.Short() {
		t.Skip("exact-engine comparison")
	}
	if testing.Short() {
		t.Skip("exact engine is slow")
	}
	// The fast (levelized, old-value) engine is the campaign default; its
	// error ratio must stay within a small factor of the exact
	// (event-driven) engine's on the most error-prone op.
	pairs := randPairs(fpu.DMul, 1200, 41)
	fast := Summarize(fpu.DMul,
		AnalyzeStream(testFPU, fpu.DMul, testModel, vscale.VR20, false, pairs, 0))
	exact := Summarize(fpu.DMul,
		AnalyzeStream(testFPU, fpu.DMul, testModel, vscale.VR20, true, pairs, 0))
	if fast.ErrorRatio() == 0 || exact.ErrorRatio() == 0 {
		t.Fatalf("both engines must observe VR20 errors: fast %v exact %v",
			fast.ErrorRatio(), exact.ErrorRatio())
	}
	ratio := fast.ErrorRatio() / exact.ErrorRatio()
	if ratio < 0.25 || ratio > 4 {
		t.Fatalf("fast/exact ER ratio %v outside [0.25, 4] (fast %v, exact %v)",
			ratio, fast.ErrorRatio(), exact.ErrorRatio())
	}
}

func TestScaleAccessors(t *testing.T) {
	a := NewAt(testFPU, fpu.DAdd, 1.2, false)
	if a.Op() != fpu.DAdd || a.Scale() != 1.2 {
		t.Fatalf("accessors: %v %v", a.Op(), a.Scale())
	}
}

func TestHigherScaleNeverFewerErrors(t *testing.T) {
	// Error ratios must be monotone in the delay scale.
	pairs := randPairs(fpu.DMul, 1500, 43)
	var prev float64
	for _, scale := range []float64{1.0, 1.15, 1.256, 1.35} {
		recs := AnalyzeStreamAt(testFPU, fpu.DMul, scale, false, pairs, 0)
		er := Summarize(fpu.DMul, recs).ErrorRatio()
		if er+0.02 < prev { // small statistical slack
			t.Fatalf("ER dropped from %v to %v at scale %v", prev, er, scale)
		}
		prev = er
	}
	if prev == 0 {
		t.Fatal("deep stress should produce errors")
	}
}

func TestAnalyzeStreamWorkerCountInvariant(t *testing.T) {
	// Regression: shards used to warm up on their own first pair (a
	// pair→pair self-transition), so shard-boundary records depended on
	// the worker count. Warming each shard with the previous shard's
	// last pair makes the stream byte-identical for any sharding. The
	// pair count is deliberately not a multiple of the worker counts so
	// shard boundaries land mid-stream.
	for _, op := range []fpu.Op{fpu.DMul, fpu.DSub} {
		pairs := randPairs(op, 257, 47)
		serial := AnalyzeStream(testFPU, op, testModel, vscale.VR20, false, pairs, 1)
		for _, workers := range []int{2, 3, 8} {
			parallel := AnalyzeStream(testFPU, op, testModel, vscale.VR20, false, pairs, workers)
			for i := range serial {
				if serial[i] != parallel[i] {
					t.Fatalf("%s: workers=%d diverges from serial at record %d:\n  serial   %+v\n  parallel %+v",
						op, workers, i, serial[i], parallel[i])
				}
			}
		}
	}
}
