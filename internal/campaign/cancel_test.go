package campaign

import (
	"context"
	"errors"
	"testing"

	"teva/internal/errmodel"
)

func TestRunCanceledBeforeStart(t *testing.T) {
	w := tinyWorkload(t, "sobel")
	m := errmodel.BuildDA("VR15", 0, 1000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(Spec{Workload: w, Model: m, Runs: 8, Seed: 1, Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res != nil {
		t.Fatal("a canceled campaign must never return a partial result")
	}
}

func TestRunNilContextIsBackground(t *testing.T) {
	w := tinyWorkload(t, "sobel")
	m := errmodel.BuildDA("VR15", 0, 1000)
	res, err := Run(Spec{Workload: w, Model: m, Runs: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 4 {
		t.Fatalf("result %+v", res)
	}
}
