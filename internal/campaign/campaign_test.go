package campaign

import (
	"math"
	"testing"

	"teva/internal/dta"
	"teva/internal/errmodel"
	"teva/internal/fpu"
	"teva/internal/prng"
	"teva/internal/workloads"
)

func tinyWorkload(t *testing.T, name string) *workloads.Workload {
	t.Helper()
	w, err := workloads.ByName(name, workloads.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// syntheticWA builds a WA model with the given per-op rate and masks.
func syntheticWA(level string, op fpu.Op, er float64, masks []uint64) *errmodel.WAModel {
	recs := make([]dta.Record, 0)
	for _, m := range masks {
		recs = append(recs, dta.Record{Mask: m})
	}
	total := int(float64(len(masks))/er + 0.5)
	for len(recs) < total {
		recs = append(recs, dta.Record{})
	}
	return errmodel.BuildWA(level, "synthetic", map[fpu.Op]*dta.Summary{
		op: dta.Summarize(op, recs),
	})
}

func TestZeroRateModelIsFullyMasked(t *testing.T) {
	w := tinyWorkload(t, "sobel")
	m := errmodel.BuildDA("VR15", 0, 1000)
	res, err := Run(Spec{Workload: w, Model: m, Runs: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcomes[Masked] != 8 {
		t.Fatalf("outcomes %v", res.Outcomes)
	}
	if res.InjectedErrors != 0 || res.RunsWithInjection != 0 {
		t.Fatalf("spurious injections: %+v", res)
	}
	if res.AVM() != 0 || res.ErrorRatio() != 0 {
		t.Fatal("AVM and ER must be zero")
	}
}

func TestMantissaCorruptionCausesSDC(t *testing.T) {
	// Flipping mid-mantissa bits in sobel's adds perturbs the output
	// image without crashing. (Pure LSB flips are fully absorbed by the
	// final integer quantization — genuine application resilience.)
	w := tinyWorkload(t, "sobel")
	m := syntheticWA("VR20", fpu.DAdd, 0.02, []uint64{1 << 45, 1 << 48})
	res, err := Run(Spec{Workload: w, Model: m, Runs: 16, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcomes[SDC] == 0 {
		t.Fatalf("expected SDC outcomes: %v", res.Outcomes)
	}
	if res.Outcomes[Crash] != 0 {
		t.Fatalf("mantissa LSB flips should not crash: %v", res.Outcomes)
	}
	if res.InjectedErrors == 0 || res.RunsWithInjection == 0 {
		t.Fatal("injections not recorded")
	}
	if res.AVM() == 0 {
		t.Fatal("AVM must be positive")
	}
}

func TestExponentCorruptionCanCrash(t *testing.T) {
	// Corrupting the top exponent bit of division results creates
	// Inf/NaN values that hit the FP invalid-operation trap or corrupt
	// control flow — the Crash class.
	w := tinyWorkload(t, "sobel")
	m := syntheticWA("VR20", fpu.DDiv, 0.05, []uint64{1 << 62})
	res, err := Run(Spec{Workload: w, Model: m, Runs: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	bad := res.Outcomes[SDC] + res.Outcomes[Crash] + res.Outcomes[Timeout]
	if bad == 0 {
		t.Fatalf("expected disturbed outcomes: %v", res.Outcomes)
	}
}

func TestVerificationWorkloadDetectsCorruption(t *testing.T) {
	// is checks its key checksum in-program: corrupting the randlc
	// multiplications flips the console verdict (SDC via output diff).
	w := tinyWorkload(t, "is")
	m := syntheticWA("VR20", fpu.DMul, 0.001, []uint64{1 << 30})
	res, err := Run(Spec{Workload: w, Model: m, Runs: 12, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcomes[SDC]+res.Outcomes[Crash] == 0 {
		t.Fatalf("expected corrupted verification: %v", res.Outcomes)
	}
}

func TestDeterministicCampaign(t *testing.T) {
	w := tinyWorkload(t, "cg")
	m := syntheticWA("VR15", fpu.DMul, 0.005, []uint64{1 << 20, 1})
	r1, err := Run(Spec{Workload: w, Model: m, Runs: 10, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(Spec{Workload: w, Model: m, Runs: 10, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Outcomes != r2.Outcomes || r1.InjectedErrors != r2.InjectedErrors {
		t.Fatalf("campaign not reproducible: %v vs %v", r1.Outcomes, r2.Outcomes)
	}
}

func TestResultAccessors(t *testing.T) {
	r := &Result{Runs: 10}
	r.Outcomes[Masked] = 6
	r.Outcomes[SDC] = 2
	r.Outcomes[Crash] = 1
	r.Outcomes[Timeout] = 1
	r.RunsWithInjection = 8
	r.InjectedErrors = 40
	r.GoldenInstret = 1000
	if r.Fraction(SDC) != 0.2 {
		t.Fatal("fraction")
	}
	if r.AVM() != 0.5 {
		t.Fatalf("AVM %v", r.AVM())
	}
	if r.NonMaskedFraction() != 0.4 {
		t.Fatal("non-masked")
	}
	if r.ErrorRatio() != 40.0/10/1000 {
		t.Fatalf("ER %v", r.ErrorRatio())
	}
	lo, hi := r.Wilson(SDC)
	if lo >= 0.2 || hi <= 0.2 {
		t.Fatal("Wilson interval")
	}
	if r.String() == "" {
		t.Fatal("String")
	}
	if Masked.String() != "Masked" || Timeout.String() != "Timeout" {
		t.Fatal("outcome names")
	}
}

func TestInvalidSpec(t *testing.T) {
	w := tinyWorkload(t, "cg")
	if _, err := Run(Spec{Workload: w, Model: errmodel.BuildDA("VR15", 0, 1), Runs: 0}); err == nil {
		t.Fatal("zero runs must error")
	}
}

func TestSingleInjectionMode(t *testing.T) {
	w := tinyWorkload(t, "sobel")
	m := syntheticWA("VR20", fpu.DAdd, 0.5, []uint64{1 << 45})
	res, err := Run(Spec{Workload: w, Model: m, Runs: 20, Seed: 9, SingleInjection: true})
	if err != nil {
		t.Fatal(err)
	}
	// Exactly one injection per run.
	if res.InjectedErrors != int64(res.Runs) || res.RunsWithInjection != res.Runs {
		t.Fatalf("single-injection accounting wrong: %+v", res)
	}
	// AVM equals the non-masked fraction when every run injects once.
	if res.AVM() != res.NonMaskedFraction() {
		t.Fatalf("AVM %v != non-masked %v", res.AVM(), res.NonMaskedFraction())
	}
}

func TestSingleInjectionZeroRateModel(t *testing.T) {
	w := tinyWorkload(t, "cg")
	m := errmodel.BuildDA("VR15", 0, 1000)
	res, err := Run(Spec{Workload: w, Model: m, Runs: 6, Seed: 10, SingleInjection: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcomes[Masked] != 6 || res.RunsWithInjection != 0 || res.AVM() != 0 {
		t.Fatalf("zero-rate single injection: %+v", res)
	}
}

func TestSingleInjectionDAModel(t *testing.T) {
	// DA single injection targets any instruction class; with a nonzero
	// rate every run gets exactly one flip (up to no-writeback targets).
	w := tinyWorkload(t, "sobel")
	m := errmodel.BuildDA("VR20", 100, 10000)
	res, err := Run(Spec{Workload: w, Model: m, Runs: 30, Seed: 11, SingleInjection: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.RunsWithInjection < res.Runs*7/10 {
		t.Fatalf("too few DA single injections landed: %+v", res)
	}
	if res.InjectedErrors > int64(res.Runs) {
		t.Fatalf("more than one injection in a run: %+v", res)
	}
}

func TestCrashTaxonomy(t *testing.T) {
	// Exponent-bit corruption on sobel's divisions produces FP exception
	// and memory-fault crashes; the taxonomy must account for every
	// crash.
	w := tinyWorkload(t, "sobel")
	m := syntheticWA("VR20", fpu.DDiv, 0.2, []uint64{1 << 62, 1 << 61})
	res, err := Run(Spec{Workload: w, Model: m, Runs: 24, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	var kinds int
	for kind, c := range res.CrashKinds {
		if c <= 0 {
			t.Fatalf("empty kind %q recorded", kind)
		}
		kinds += c
	}
	if kinds != res.Outcomes[Crash] {
		t.Fatalf("taxonomy accounts for %d of %d crashes", kinds, res.Outcomes[Crash])
	}
	if res.Outcomes[Crash] > 0 && len(res.CrashKinds) == 0 {
		t.Fatal("crashes without kinds")
	}
}

func TestInvalidTimeoutFactorRejected(t *testing.T) {
	w := tinyWorkload(t, "sobel")
	m := errmodel.BuildDA("VR15", 0, 1000)
	for name, tf := range map[string]float64{
		"negative":      -1,
		"tiny negative": -1e-9,
		"NaN":           math.NaN(),
		"+Inf":          math.Inf(1),
		"-Inf":          math.Inf(-1),
	} {
		if _, err := Run(Spec{Workload: w, Model: m, Runs: 2, Seed: 1, TimeoutFactor: tf}); err == nil {
			t.Errorf("%s TimeoutFactor must be rejected", name)
		}
	}
	// Zero still selects the paper's default of 2.0, and an explicit
	// positive factor still works.
	for _, tf := range []float64{0, 1.5} {
		if _, err := Run(Spec{Workload: w, Model: m, Runs: 2, Seed: 1, TimeoutFactor: tf}); err != nil {
			t.Errorf("TimeoutFactor %v must be accepted: %v", tf, err)
		}
	}
}

func TestCrashKindTaxonomy(t *testing.T) {
	for _, tc := range []struct {
		reason string
		want   string
	}{
		{"memory fault at 0x1000", "memory fault"},
		{"string fault: copy past segment end", "memory fault"},
		{"misaligned load at 0x3", "misaligned access"},
		{"jump outside text segment", "wild pc"},
		{"illegal instruction 0xdeadbeef", "illegal instruction"},
		{"fp invalid operation", "fp exception"},
		{"watchdog reset", "other"},
		{"", "other"},
	} {
		if got := crashKind(tc.reason); got != tc.want {
			t.Errorf("crashKind(%q) = %q, want %q", tc.reason, got, tc.want)
		}
	}
}

func TestSingleInjectionWithNilInjectorIsMasked(t *testing.T) {
	// A model whose every rate is zero makes SingleInjector return nil
	// ("this voltage level produces no errors for this application");
	// each run must then execute injection-free and classify as Masked
	// without counting toward RunsWithInjection.
	w := tinyWorkload(t, "sobel")
	m := errmodel.BuildDA("VR15", 0, 1000)
	res, err := Run(Spec{Workload: w, Model: m, Runs: 6, Seed: 5, SingleInjection: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcomes[Masked] != 6 {
		t.Fatalf("all runs must be Masked: %v", res.Outcomes)
	}
	if res.RunsWithInjection != 0 || res.InjectedErrors != 0 {
		t.Fatalf("nil injector must not record injections: %+v", res)
	}
	if res.AVM() != 0 {
		t.Fatalf("AVM must be 0, got %v", res.AVM())
	}
}

// TestWilsonPropertyOverRandomTallies asserts the interval contract
// 0 <= lo <= fraction <= hi <= 1 for every outcome class over randomized
// Result tallies, including empty cells (Runs == 0) and cells where one
// class takes all runs. Uses the repo's seedable source so failures
// reproduce byte-for-byte.
func TestWilsonPropertyOverRandomTallies(t *testing.T) {
	src := prng.New(0x81750)
	for iter := 0; iter < 5000; iter++ {
		var r Result
		r.Runs = src.Intn(1200) // 0 included
		remaining := r.Runs
		for o := Masked; o < NumOutcomes; o++ {
			c := remaining
			if o != NumOutcomes-1 && remaining > 0 {
				c = src.Intn(remaining + 1)
			}
			r.Outcomes[o] = c
			remaining -= c
		}
		for o := Masked; o < NumOutcomes; o++ {
			lo, hi := r.Wilson(o)
			v := r.Fraction(o)
			if !(0 <= lo && lo <= v && v <= hi && hi <= 1) {
				t.Fatalf("iter %d: Wilson(%v) = [%v, %v] does not bracket %v (tally %v/%d)",
					iter, o, lo, hi, v, r.Outcomes, r.Runs)
			}
		}
	}
}
