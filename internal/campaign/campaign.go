// Package campaign runs microarchitectural error-injection campaigns and
// classifies their outcomes into the paper's four categories (Section
// IV-A): Masked, SDC, Crash, and Timeout. A campaign executes one golden
// (injection-free) run to capture the reference output and execution
// time, then N injected runs with fresh per-run random streams; Timeout
// is declared at twice the error-free execution time, exactly as in the
// paper.
package campaign

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"teva/internal/cpu"
	"teva/internal/errmodel"
	"teva/internal/fpu"
	"teva/internal/guard"
	"teva/internal/obs"
	"teva/internal/prng"
	"teva/internal/stats"
	"teva/internal/workloads"
)

// Outcome is the classification of one injected run.
type Outcome uint8

// The four outcome classes of Section IV-A.
const (
	Masked Outcome = iota
	SDC
	Crash
	Timeout
	NumOutcomes
)

var outcomeNames = [NumOutcomes]string{"Masked", "SDC", "Crash", "Timeout"}

func (o Outcome) String() string {
	if int(o) < len(outcomeNames) {
		return outcomeNames[o]
	}
	return fmt.Sprintf("Outcome(%d)", uint8(o))
}

// Spec describes one campaign cell: a workload, an error model (already
// bound to a voltage level), and the run count.
type Spec struct {
	Workload *workloads.Workload
	Model    errmodel.Model
	// Runs is the number of injected executions (the paper uses
	// stats.SampleSize(stats.Z95, 0.03) = 1068).
	Runs int
	// Seed makes the campaign reproducible.
	Seed uint64
	// TimeoutFactor scales the golden execution time into the timeout
	// budget (default 2.0, per the paper).
	TimeoutFactor float64
	// Workers bounds the parallelism (default GOMAXPROCS).
	Workers int
	// SingleInjection selects the paper's statistical-fault-injection
	// discipline: each run corrupts exactly one dynamic instruction,
	// drawn from the model's injection distribution over the golden
	// execution (AVM then reads directly as "probability that one
	// injected timing error disturbs the application"). When false, the
	// model corrupts stochastically throughout the run (many errors per
	// run for error-prone voltage levels).
	SingleInjection bool
	// Metrics, when non-nil, receives campaign.* counters (runs, injected
	// errors, per-outcome tallies) and the injections-per-run histogram.
	Metrics *obs.Registry
	// Context, when non-nil, cancels the cell: workers stop picking up new
	// runs once it is done and Run returns the context's error instead of
	// a partial result. A partially sampled campaign would bias every
	// statistic built on it, so cancellation always discards the cell —
	// the artifact cache only ever sees complete cells.
	Context context.Context
}

// Metric names published by Run. Per-outcome tallies are four separate
// constants (not an indexed lookup) so the obsnames analyzer can prove
// the namespace at compile time.
const (
	MetricCells             = "campaign.cells"
	MetricRuns              = "campaign.runs"
	MetricGoldenRuns        = "campaign.golden_runs"
	MetricInjectedErrors    = "campaign.injected_errors"
	MetricRunsWithInjection = "campaign.runs_with_injection"
	MetricOutcomeMasked     = "campaign.outcome.masked"
	MetricOutcomeSDC        = "campaign.outcome.sdc"
	MetricOutcomeCrash      = "campaign.outcome.crash"
	MetricOutcomeTimeout    = "campaign.outcome.timeout"
	MetricInjectionsPerRun  = "campaign.injections_per_run"
)

// injectionsPerRunBounds buckets the histogram of manifested errors per
// injected run (0 means the model never fired; the overflow bucket
// catches error-storm runs at deep undervolting).
var injectionsPerRunBounds = []float64{0, 1, 2, 4, 8, 16, 64, 256, 1024}

// record publishes the aggregated cell onto m (no-op for nil m). Called
// after the worker fan-in, from one goroutine, so gauge-free counter
// arithmetic keeps snapshots order-independent.
func (r *Result) record(m *obs.Registry, outs []int64) {
	if m == nil {
		return
	}
	m.Counter(MetricCells).Inc()
	m.Counter(MetricGoldenRuns).Inc()
	m.Counter(MetricRuns).Add(int64(r.Runs))
	m.Counter(MetricInjectedErrors).Add(r.InjectedErrors)
	m.Counter(MetricRunsWithInjection).Add(int64(r.RunsWithInjection))
	m.Counter(MetricOutcomeMasked).Add(int64(r.Outcomes[Masked]))
	m.Counter(MetricOutcomeSDC).Add(int64(r.Outcomes[SDC]))
	m.Counter(MetricOutcomeCrash).Add(int64(r.Outcomes[Crash]))
	m.Counter(MetricOutcomeTimeout).Add(int64(r.Outcomes[Timeout]))
	h := m.Histogram(MetricInjectionsPerRun, injectionsPerRunBounds)
	for _, n := range outs {
		h.Observe(float64(n))
	}
}

// Result aggregates one campaign cell.
type Result struct {
	Workload string
	Model    errmodel.Kind
	Level    string
	// Outcomes counts runs per class.
	Outcomes [NumOutcomes]int
	// Runs is the total injected executions.
	Runs int
	// InjectedErrors is the total number of corrupted writebacks across
	// all runs.
	InjectedErrors int64
	// RunsWithInjection counts runs in which at least one error was
	// injected.
	RunsWithInjection int
	// GoldenInstret/GoldenCycles describe the error-free execution.
	GoldenInstret int64
	GoldenCycles  uint64
	// GoldenFPOps is the error-free per-op dynamic instruction count.
	GoldenFPOps [fpu.NumOps]int64
	// CrashKinds breaks the Crash class down by cause (the paper's
	// process-crash / kernel-panic / floating-point-exception taxonomy):
	// "memory fault", "misaligned access", "wild pc", "illegal
	// instruction", "fp exception", "other".
	CrashKinds map[string]int
}

// crashKind maps a simulator crash reason onto the taxonomy.
func crashKind(reason string) string {
	switch {
	case strings.Contains(reason, "memory fault"), strings.Contains(reason, "string fault"):
		return "memory fault"
	case strings.Contains(reason, "misaligned"):
		return "misaligned access"
	case strings.Contains(reason, "outside text"):
		return "wild pc"
	case strings.Contains(reason, "illegal"):
		return "illegal instruction"
	case strings.Contains(reason, "fp invalid"):
		return "fp exception"
	default:
		return "other"
	}
}

// Fraction returns the share of runs in the class.
func (r *Result) Fraction(o Outcome) float64 {
	if r.Runs == 0 {
		return 0
	}
	return float64(r.Outcomes[o]) / float64(r.Runs)
}

// ErrorRatio is Eq. 2 at the campaign level: injected (manifested) errors
// per dynamic instruction, averaged over runs — the quantity Figure 10
// compares across models.
func (r *Result) ErrorRatio() float64 {
	if r.Runs == 0 || r.GoldenInstret == 0 {
		return 0
	}
	return float64(r.InjectedErrors) / float64(r.Runs) / float64(r.GoldenInstret)
}

// AVM is the Application Vulnerability Metric of Eq. 4: the probability
// that injected timing errors disturb the application (SDC, Crash or
// Timeout), over the runs that actually experienced an injection. A
// workload/level whose model injects nothing is invulnerable (AVM 0).
func (r *Result) AVM() float64 {
	if r.RunsWithInjection == 0 {
		return 0
	}
	bad := r.Outcomes[SDC] + r.Outcomes[Crash] + r.Outcomes[Timeout]
	return float64(bad) / float64(r.RunsWithInjection)
}

// NonMaskedFraction is the share of all runs that were disturbed.
func (r *Result) NonMaskedFraction() float64 {
	if r.Runs == 0 {
		return 0
	}
	bad := r.Outcomes[SDC] + r.Outcomes[Crash] + r.Outcomes[Timeout]
	return float64(bad) / float64(r.Runs)
}

// Wilson returns the 95% confidence interval for an outcome's fraction.
func (r *Result) Wilson(o Outcome) (lo, hi float64) {
	p := stats.Proportion{Successes: r.Outcomes[o], Trials: r.Runs}
	return p.Wilson(stats.Z95)
}

// golden captures the reference execution.
type golden struct {
	out     []byte
	console []byte
	cycles  uint64
	instret int64
	fpops   [fpu.NumOps]int64
}

// runGolden executes the workload without injection.
func runGolden(w *workloads.Workload) (*golden, error) {
	c := cpu.New(w.Program, cpu.Config{TrapFPInvalid: true})
	res := c.Run(1 << 40)
	if res.Status != cpu.Halted {
		return nil, fmt.Errorf("campaign: golden %s did not halt: %v (%s)",
			w.Name, res.Status, res.Reason)
	}
	g := &golden{
		cycles:  res.Cycles,
		instret: res.Instret,
		fpops:   res.FPOps,
	}
	g.out = append(g.out, c.Mem()[w.OutStart:w.OutStart+w.OutLen]...)
	g.console = append(g.console, c.Output()...)
	return g, nil
}

// ValidateTimeoutFactor rejects timeout factors that would silently turn
// into a zero/garbage cycle budget and misclassify every run as Timeout.
// Zero is valid — Run substitutes the 2.0 default; everything else must
// be a positive, finite factor. Exported so spec decoders (the serve
// API) reject a bad factor at submission time with the same rule Run
// enforces at execution time.
func ValidateTimeoutFactor(tf float64) error {
	if math.IsNaN(tf) || math.IsInf(tf, 0) || tf < 0 {
		return fmt.Errorf("campaign: invalid TimeoutFactor %v (want a positive, finite factor)", tf)
	}
	return nil
}

// Run executes the campaign cell. Cancellation (Spec.Context) and worker
// panics both abort the whole cell with an error — never a partial
// Result — while a panic's identity (workload/model/level and stack) is
// preserved through guard.PanicError for per-cell reporting upstream.
func Run(spec Spec) (*Result, error) {
	if spec.Runs <= 0 {
		return nil, fmt.Errorf("campaign: non-positive run count")
	}
	ctx := spec.Context
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sp := spec.Metrics.Phase("campaign")
	defer sp.End()
	tf := spec.TimeoutFactor
	if tf == 0 {
		tf = 2.0
	}
	if err := ValidateTimeoutFactor(tf); err != nil {
		return nil, err
	}
	g, err := runGolden(spec.Workload)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Workload:      spec.Workload.Name,
		Model:         spec.Model.Kind(),
		Level:         spec.Model.Level(),
		Runs:          spec.Runs,
		GoldenInstret: g.instret,
		GoldenCycles:  g.cycles,
		GoldenFPOps:   g.fpops,
	}
	budget := uint64(float64(g.cycles) * tf)

	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > spec.Runs {
		workers = spec.Runs
	}
	type runOut struct {
		outcome    Outcome
		injections int64
		crashKind  string
	}
	outs := make([]runOut, spec.Runs)
	oneRun := func(i int) {
		src := prng.New(spec.Seed + uint64(i)*0x9E3779B97F4A7C15 + 1)
		var inj cpu.Injector
		if spec.SingleInjection {
			inj = errmodel.SingleInjector(spec.Model, errmodel.ExecProfile{
				FPOps: g.fpops, TotalInstr: g.instret,
			}, src)
		} else {
			inj = spec.Model.NewInjector(src)
		}
		c := cpu.New(spec.Workload.Program, cpu.Config{
			Injector:      inj,
			TrapFPInvalid: true,
		})
		r := c.Run(budget)
		var o Outcome
		var kind string
		switch r.Status {
		case cpu.Crashed:
			o = Crash
			kind = crashKind(r.Reason)
		case cpu.TimedOut:
			o = Timeout
		default:
			w := spec.Workload
			same := bytesEqual(c.Mem()[w.OutStart:w.OutStart+w.OutLen], g.out) &&
				bytesEqual(c.Output(), g.console)
			if same {
				o = Masked
			} else {
				o = SDC
			}
		}
		outs[i] = runOut{outcome: o, injections: r.Injections, crashKind: kind}
	}
	// Workers pull run indices from a shared counter so a canceled cell
	// stops after the in-flight runs. A panicking run is recovered by the
	// guard barrier into a labeled error; its worker dies but the others
	// drain the remaining indices, so one poisoned run cannot hang the
	// pool. Per-run results are pure functions of (seed, index), so the
	// pull order cannot change the aggregate.
	cellID := fmt.Sprintf("%s/%s@%s", spec.Workload.Name, spec.Model.Kind(), spec.Model.Level())
	var next atomic.Int64
	var wg sync.WaitGroup
	var sink guard.Sink
	for w := 0; w < workers; w++ {
		guard.Go(&wg, &sink, "campaign cell "+cellID, func() error {
			for {
				i := int(next.Add(1)) - 1
				if i >= spec.Runs {
					return nil
				}
				if err := ctx.Err(); err != nil {
					return err
				}
				oneRun(i)
			}
		})
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := sink.Join(); err != nil {
		return nil, err
	}
	res.CrashKinds = make(map[string]int)
	injections := make([]int64, len(outs))
	for i, o := range outs {
		res.Outcomes[o.outcome]++
		res.InjectedErrors += o.injections
		injections[i] = o.injections
		if o.injections > 0 {
			res.RunsWithInjection++
		}
		if o.crashKind != "" {
			res.CrashKinds[o.crashKind]++
		}
	}
	res.record(spec.Metrics, injections)
	return res, nil
}

// bytesEqual avoids importing bytes for two call sites.
func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// String renders the cell like the paper's Figure 9 bars.
func (r *Result) String() string {
	return fmt.Sprintf("%s/%s@%s: masked %.1f%% sdc %.1f%% crash %.1f%% timeout %.1f%% (ER %.3g, AVM %.3f)",
		r.Workload, r.Model, r.Level,
		100*r.Fraction(Masked), 100*r.Fraction(SDC),
		100*r.Fraction(Crash), 100*r.Fraction(Timeout),
		r.ErrorRatio(), r.AVM())
}
