package logicsim

import (
	"teva/internal/cell"
	"teva/internal/netlist"
)

// WideSim is the 64-wide bit-parallel zero-delay evaluator: each net
// holds a uint64 word whose bit L is the net's value in vector (lane) L,
// LSB = lane 0. One Run evaluates up to 64 independent input vectors in a
// single circuit walk using bitwise opcode kernels.
type WideSim struct {
	c     *netlist.Compiled
	words []uint64
}

// NewWide returns a 64-wide simulator for the compiled netlist.
func NewWide(c *netlist.Compiled) *WideSim {
	s := &WideSim{c: c, words: make([]uint64, c.NumNets)}
	s.words[netlist.Const1] = ^uint64(0)
	return s
}

// Run evaluates the netlist for the given primary-input words (one word
// per primary input, lanes packed LSB = vector 0). Unused lanes simply
// compute garbage vectors; callers extract only the lanes they drove.
//
//teva:hotpath
func (s *WideSim) Run(inputs []uint64) {
	c := s.c
	if len(inputs) != len(c.Inputs) {
		panic("logicsim: input width mismatch")
	}
	w := s.words
	for i, net := range c.Inputs {
		w[net] = inputs[i]
	}
	in, stride := c.In, c.Stride
	for gi := 0; gi < c.NumGates; gi++ {
		base := gi * stride
		a := w[in[base]]
		b := w[in[base+1]]
		cc := w[in[base+2]]
		var v uint64
		switch c.Op[gi] {
		case cell.OpBuf:
			v = a
		case cell.OpInv:
			v = ^a
		case cell.OpAnd2:
			v = a & b
		case cell.OpOr2:
			v = a | b
		case cell.OpNand2:
			v = ^(a & b)
		case cell.OpNor2:
			v = ^(a | b)
		case cell.OpXor2:
			v = a ^ b
		case cell.OpXnor2:
			v = ^(a ^ b)
		case cell.OpMux2:
			v = (a &^ cc) | (b & cc)
		case cell.OpAoi21:
			v = ^((a & b) | cc)
		case cell.OpOai21:
			v = ^((a | b) & cc)
		case cell.OpAnd3:
			v = a & b & cc
		case cell.OpOr3:
			v = a | b | cc
		case cell.OpNand3:
			v = ^(a & b & cc)
		case cell.OpNor3:
			v = ^(a | b | cc)
		case cell.OpXor3:
			v = a ^ b ^ cc
		case cell.OpMaj3:
			v = (a & b) | (cc & (a ^ b))
		default:
			panic("logicsim: invalid opcode " + c.Op[gi].String())
		}
		w[c.Out[gi]] = v
	}
}

// Word returns the 64-lane word of a net after Run.
func (s *WideSim) Word(net netlist.NetID) uint64 { return s.words[net] }

// Outputs copies the primary-output words into dst (allocating when nil).
func (s *WideSim) Outputs(dst []uint64) []uint64 {
	outs := s.c.Outputs
	if dst == nil {
		//teva:allow hotalloc -- reviewed: nil-dst convenience branch; hot callers (dta goldenBatch) always pass a buffer
		dst = make([]uint64, len(outs))
	}
	for i, net := range outs {
		dst[i] = s.words[net]
	}
	return dst
}

// PackLaneBits writes value's bits into lane of words[offset:offset+width]
// LSB-first: bit i of value lands in bit `lane` of words[offset+i]. The
// lane-major counterpart of PackInputs.
func PackLaneBits(words []uint64, lane, offset, width int, value uint64) {
	bit := uint64(1) << uint(lane)
	for i := 0; i < width; i++ {
		if value>>uint(i)&1 == 1 {
			words[offset+i] |= bit
		} else {
			words[offset+i] &^= bit
		}
	}
}

// Transpose64 transposes the 64x64 bit matrix in place: bit j of a[i]
// moves to bit i of a[j]. With rows holding one lane's value each
// (row L = lane L), the result holds one bit position's lanes each
// (word j = bit j across lanes) — a whole-batch PackLaneBits (and, being
// an involution, UnpackLaneBits) in O(64 log 64) word operations instead
// of one conditional per (lane, bit) pair.
//
//teva:hotpath
func Transpose64(a *[64]uint64) {
	j := 32
	m := uint64(0x00000000FFFFFFFF)
	for j != 0 {
		for k := 0; k < 64; k = (k + j + 1) &^ j {
			t := (a[k+j] ^ (a[k] >> uint(j))) & m
			a[k+j] ^= t
			a[k] ^= t << uint(j)
		}
		j >>= 1
		m ^= m << uint(j)
	}
}

// UnpackLaneBits reads width bits of the given lane from words[offset:],
// LSB-first; the counterpart of UnpackOutputs.
func UnpackLaneBits(words []uint64, lane, offset, width int) uint64 {
	var v uint64
	for i := 0; i < width; i++ {
		v |= (words[offset+i] >> uint(lane) & 1) << uint(i)
	}
	return v
}
