package logicsim

import (
	"testing"

	"teva/internal/prng"
)

func TestTranspose64MatchesPackLaneBits(t *testing.T) {
	src := prng.New(5)
	var rows [64]uint64
	for i := range rows {
		rows[i] = src.Uint64()
	}
	want := make([]uint64, 64)
	for lane, v := range rows {
		PackLaneBits(want, lane, 0, 64, v)
	}
	got := rows
	Transpose64(&got)
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("word %d: got %#x want %#x", j, got[j], want[j])
		}
	}
}
