// Package logicsim evaluates a netlist functionally with zero delay. It is
// the "first instance" of the paper's dynamic timing analysis (Section
// III-A.1): the nominal-voltage golden simulation whose outputs define
// correct behaviour.
package logicsim

import "teva/internal/netlist"

// Sim is a reusable zero-delay evaluator for one netlist.
type Sim struct {
	n      *netlist.Netlist
	values []bool
	inBuf  []bool
}

// New returns a simulator for the netlist.
func New(n *netlist.Netlist) *Sim {
	s := &Sim{n: n, values: make([]bool, n.NumNets())}
	s.values[netlist.Const1] = true
	return s
}

// Run evaluates the netlist for the given primary-input assignment, which
// must match len(n.Inputs()).
func (s *Sim) Run(inputs []bool) {
	ins := s.n.Inputs()
	if len(inputs) != len(ins) {
		panic("logicsim: input width mismatch")
	}
	for i, net := range ins {
		s.values[net] = inputs[i]
	}
	gates := s.n.Gates()
	if cap(s.inBuf) < 4 {
		s.inBuf = make([]bool, 4)
	}
	for gi := range gates {
		g := &gates[gi]
		buf := s.inBuf[:len(g.Inputs)]
		for i, in := range g.Inputs {
			buf[i] = s.values[in]
		}
		s.values[g.Output] = g.Eval(buf)
	}
}

// Value returns the value of a net after Run.
func (s *Sim) Value(net netlist.NetID) bool { return s.values[net] }

// ReadBus packs a bus into a uint64 (LSB first); the bus must be at most
// 64 bits wide.
func (s *Sim) ReadBus(bus netlist.Bus) uint64 {
	if len(bus) > 64 {
		panic("logicsim: bus wider than 64 bits")
	}
	var v uint64
	for i, net := range bus {
		if s.values[net] {
			v |= 1 << uint(i)
		}
	}
	return v
}

// Outputs copies the primary-output values into dst (allocating when nil).
func (s *Sim) Outputs(dst []bool) []bool {
	outs := s.n.Outputs()
	if dst == nil {
		dst = make([]bool, len(outs))
	}
	for i, net := range outs {
		dst[i] = s.values[net]
	}
	return dst
}

// PackInputs writes value into inputs[offset:offset+width] LSB-first; a
// convenience for driving input vectors from integers.
func PackInputs(inputs []bool, offset, width int, value uint64) {
	for i := 0; i < width; i++ {
		inputs[offset+i] = value>>uint(i)&1 == 1
	}
}

// UnpackOutputs reads width bits LSB-first from values[offset:].
func UnpackOutputs(values []bool, offset, width int) uint64 {
	var v uint64
	for i := 0; i < width; i++ {
		if values[offset+i] {
			v |= 1 << uint(i)
		}
	}
	return v
}
