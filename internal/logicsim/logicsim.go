// Package logicsim evaluates a netlist functionally with zero delay. It is
// the "first instance" of the paper's dynamic timing analysis (Section
// III-A.1): the nominal-voltage golden simulation whose outputs define
// correct behaviour.
//
// Two evaluators are provided, both running on the compiled flat IR
// (netlist.Compiled) with opcode dispatch:
//
//   - Sim: one input vector per pass, one bool per net.
//   - WideSim: 64 input vectors per pass, one uint64 word per net; bit L
//     of every word is vector (lane) L, LSB = lane 0. Gate functions are
//     bitwise kernels, so one circuit walk evaluates 64 vectors — the
//     golden side of DTA characterization batches runs on this engine.
package logicsim

import (
	"teva/internal/cell"
	"teva/internal/netlist"
)

// Sim is a reusable zero-delay evaluator for one compiled netlist.
type Sim struct {
	c      *netlist.Compiled
	values []bool
}

// New returns a simulator for the compiled netlist.
func New(c *netlist.Compiled) *Sim {
	s := &Sim{c: c, values: make([]bool, c.NumNets)}
	s.values[netlist.Const1] = true
	return s
}

// Run evaluates the netlist for the given primary-input assignment, which
// must match len(c.Inputs).
func (s *Sim) Run(inputs []bool) {
	c := s.c
	if len(inputs) != len(c.Inputs) {
		panic("logicsim: input width mismatch")
	}
	vals := s.values
	for i, net := range c.Inputs {
		vals[net] = inputs[i]
	}
	in, stride := c.In, c.Stride
	for gi := 0; gi < c.NumGates; gi++ {
		base := gi * stride
		a := vals[in[base]]
		b := vals[in[base+1]]
		cc := vals[in[base+2]]
		var v bool
		switch c.Op[gi] {
		case cell.OpBuf:
			v = a
		case cell.OpInv:
			v = !a
		case cell.OpAnd2:
			v = a && b
		case cell.OpOr2:
			v = a || b
		case cell.OpNand2:
			v = !(a && b)
		case cell.OpNor2:
			v = !(a || b)
		case cell.OpXor2:
			v = a != b
		case cell.OpXnor2:
			v = a == b
		case cell.OpMux2:
			if cc {
				v = b
			} else {
				v = a
			}
		case cell.OpAoi21:
			v = !((a && b) || cc)
		case cell.OpOai21:
			v = !((a || b) && cc)
		case cell.OpAnd3:
			v = a && b && cc
		case cell.OpOr3:
			v = a || b || cc
		case cell.OpNand3:
			v = !(a && b && cc)
		case cell.OpNor3:
			v = !(a || b || cc)
		case cell.OpXor3:
			v = a != b != cc
		case cell.OpMaj3:
			v = (a && b) || (cc && (a != b))
		default:
			panic("logicsim: invalid opcode " + c.Op[gi].String())
		}
		vals[c.Out[gi]] = v
	}
}

// Value returns the value of a net after Run.
func (s *Sim) Value(net netlist.NetID) bool { return s.values[net] }

// ReadBus packs a bus into a uint64 (LSB first); the bus must be at most
// 64 bits wide.
func (s *Sim) ReadBus(bus netlist.Bus) uint64 {
	if len(bus) > 64 {
		panic("logicsim: bus wider than 64 bits")
	}
	var v uint64
	for i, net := range bus {
		if s.values[net] {
			v |= 1 << uint(i)
		}
	}
	return v
}

// Outputs copies the primary-output values into dst (allocating when nil).
func (s *Sim) Outputs(dst []bool) []bool {
	outs := s.c.Outputs
	if dst == nil {
		dst = make([]bool, len(outs))
	}
	for i, net := range outs {
		dst[i] = s.values[net]
	}
	return dst
}

// PackInputs writes value into inputs[offset:offset+width] LSB-first; a
// convenience for driving input vectors from integers.
func PackInputs(inputs []bool, offset, width int, value uint64) {
	for i := 0; i < width; i++ {
		inputs[offset+i] = value>>uint(i)&1 == 1
	}
}

// UnpackOutputs reads width bits LSB-first from values[offset:].
func UnpackOutputs(values []bool, offset, width int) uint64 {
	var v uint64
	for i := 0; i < width; i++ {
		if values[offset+i] {
			v |= 1 << uint(i)
		}
	}
	return v
}
