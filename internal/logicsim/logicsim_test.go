package logicsim_test

import (
	"testing"
	"testing/quick"

	"teva/internal/cell"
	"teva/internal/logicsim"
	"teva/internal/netlist"
)

func adder(t *testing.T, w int) *netlist.Netlist {
	t.Helper()
	b := netlist.NewBuilder("add", cell.Default(), 1)
	x := b.Input(w)
	y := b.Input(w)
	sum, cout := b.RippleAdder(x, y, netlist.Const0)
	b.Output(append(append(netlist.Bus{}, sum...), cout))
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestRunEvaluatesFunctionally(t *testing.T) {
	const w = 16
	n := adder(t, w)
	sim := logicsim.New(n.Compiled())
	in := make([]bool, 2*w)
	if err := quick.Check(func(a, b uint16) bool {
		logicsim.PackInputs(in, 0, w, uint64(a))
		logicsim.PackInputs(in, w, w, uint64(b))
		sim.Run(in)
		out := sim.Outputs(nil)
		got := logicsim.UnpackOutputs(out, 0, w+1)
		return got == uint64(a)+uint64(b)
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestReusableAcrossRuns(t *testing.T) {
	const w = 8
	n := adder(t, w)
	sim := logicsim.New(n.Compiled())
	in := make([]bool, 2*w)
	// Alternate extreme vectors; state must not leak between runs.
	for i := 0; i < 100; i++ {
		a := uint64(0)
		if i%2 == 0 {
			a = 255
		}
		logicsim.PackInputs(in, 0, w, a)
		logicsim.PackInputs(in, w, w, 255-a)
		sim.Run(in)
		if got := logicsim.UnpackOutputs(sim.Outputs(nil), 0, w); got != 255 {
			t.Fatalf("iteration %d: %d", i, got)
		}
	}
}

func TestOutputsReuseBuffer(t *testing.T) {
	n := adder(t, 4)
	sim := logicsim.New(n.Compiled())
	in := make([]bool, 8)
	sim.Run(in)
	buf := make([]bool, len(n.Outputs()))
	got := sim.Outputs(buf)
	if &got[0] != &buf[0] {
		t.Fatal("Outputs should fill the provided buffer")
	}
}

func TestValueAndReadBus(t *testing.T) {
	b := netlist.NewBuilder("bus", cell.Default(), 2)
	x := b.Input(8)
	y := b.NotBus(x)
	b.Output(y)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sim := logicsim.New(n.Compiled())
	in := make([]bool, 8)
	logicsim.PackInputs(in, 0, 8, 0b10110010)
	sim.Run(in)
	if got := sim.ReadBus(netlist.Bus(n.Outputs())); got != 0b01001101 {
		t.Fatalf("ReadBus = %08b", got)
	}
	if sim.Value(netlist.Const1) != true || sim.Value(netlist.Const0) != false {
		t.Fatal("constant nets wrong")
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	if err := quick.Check(func(v uint64, off uint8) bool {
		offset := int(off % 8)
		buf := make([]bool, 64+offset)
		logicsim.PackInputs(buf, offset, 64, v)
		return logicsim.UnpackOutputs(buf, offset, 64) == v
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestWidthMismatchPanics(t *testing.T) {
	n := adder(t, 4)
	sim := logicsim.New(n.Compiled())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong input width")
		}
	}()
	sim.Run(make([]bool, 3))
}

func TestReadBusTooWidePanics(t *testing.T) {
	n := adder(t, 4)
	sim := logicsim.New(n.Compiled())
	sim.Run(make([]bool, 8))
	wide := make(netlist.Bus, 65)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for >64-bit bus")
		}
	}()
	sim.ReadBus(wide)
}
