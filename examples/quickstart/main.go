// Quickstart walks the framework's two phases end to end on one
// benchmark:
//
//  1. Model development — gate-level dynamic timing analysis of the FPU
//     at a reduced supply voltage, first over random operands (the
//     IA-model view) and then over operands traced from the benchmark
//     itself (the WA-model view).
//  2. Application evaluation — a microarchitectural injection campaign
//     with the workload-aware model, classifying outcomes into
//     Masked/SDC/Crash/Timeout and reporting the AVM.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"teva/internal/campaign"
	"teva/internal/core"
	"teva/internal/fpu"
	"teva/internal/vscale"
	"teva/internal/workloads"
)

func main() {
	// Build the substrate: a ~32k-gate calibrated FPU plus the analysis
	// stack. Characterization sizes are kept small for a fast demo.
	f, err := core.New(core.Config{
		Seed:             42,
		RandomOperands:   4000,
		WorkloadOperands: 2000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("substrate ready: %d-gate FPU, CLK %.1f ns\n",
		f.FPU.NumGates(), f.FPU.CLK/1000)

	// Phase 1a: instruction-aware characterization (random operands).
	level := vscale.VR20
	fmt.Printf("\n-- dynamic timing analysis at %s (supply %.3f V, delays x%.3f)\n",
		level.Name, f.Volt.SupplyAtReduction(level.Reduction), f.Volt.ScaleFor(level))
	sums := f.RandomSummaries(level)
	for _, op := range []fpu.Op{fpu.DMul, fpu.DSub, fpu.DAdd, fpu.DI2F, fpu.SMul} {
		s := sums[op]
		fmt.Printf("   %-10s error ratio %.2e  multi-bit share %.0f%%\n",
			op, s.ErrorRatio(), 100*s.MultiBitFraction())
	}

	// Phase 1b: workload-aware characterization for the cg benchmark.
	w, err := workloads.ByName("cg", workloads.Small)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := f.CaptureTrace(w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n-- traced %s: %d instructions, %.1f%% on the FPU datapath\n",
		w.Name, tr.TotalInstr, 100*float64(tr.FPTotal())/float64(tr.TotalInstr))
	wa := f.DevelopWA(level, tr)
	fmt.Printf("   %s\n", wa.Describe())
	for _, op := range fpu.Ops() {
		if st := wa.PerOp[op]; st.ER > 0 {
			fmt.Printf("   %-10s workload-specific ER %.2e (%d observed bitmasks)\n",
				op, st.ER, len(st.Masks))
		}
	}

	// Phase 2: injection campaign.
	const runs = 60
	fmt.Printf("\n-- injecting into %s (%d runs, timeout at 2x golden time)\n", w.Name, runs)
	res, err := f.Evaluate(w, wa, runs)
	if err != nil {
		log.Fatal(err)
	}
	for o := campaign.Masked; o < campaign.NumOutcomes; o++ {
		fmt.Printf("   %-8s %5.1f%%\n", o, 100*res.Fraction(o))
	}
	fmt.Printf("   injected error ratio (Eq. 2): %.3e\n", res.ErrorRatio())
	fmt.Printf("   application vulnerability metric (Eq. 4): %.3f\n", res.AVM())
}
