// Mitigation demonstrates AVM-guided selective error protection (the
// paper's closing claim: AVM can guide energy-efficient mitigation,
// yielding up to ~20% energy savings versus running at nominal voltage).
//
// The scheme: run undervolted at VR20, but protect only the instruction
// types the workload-aware model flags as error-prone, re-executing each
// protected instruction and comparing (duplication-with-compare, the
// classic timing-error detection/correction discipline). Protected
// instructions cost an extra FPU operation; everything else rides the
// lower voltage for free. The example verifies with injection campaigns
// that the mitigated configuration is clean (AVM 0) and accounts for the
// energy.
//
// Run with: go run ./examples/mitigation [workload]
package main

import (
	"fmt"
	"log"
	"os"

	"teva/internal/alu"
	"teva/internal/core"
	"teva/internal/cpu"
	"teva/internal/errmodel"
	"teva/internal/fpu"
	"teva/internal/power"
	"teva/internal/prng"
	"teva/internal/vscale"
	"teva/internal/workloads"
)

// mitigatedModel wraps a WA model, correcting (suppressing) errors on the
// protected instruction types — the effect of duplication-with-compare —
// while counting how many corrections fired.
type mitigatedModel struct {
	*errmodel.WAModel
	protected [fpu.NumOps]bool
}

type mitigatedInjector struct {
	inner     cpu.Injector
	protected *[fpu.NumOps]bool
	corrected int64
}

func (m *mitigatedModel) NewInjector(src *prng.Source) cpu.Injector {
	return &mitigatedInjector{inner: m.WAModel.NewInjector(src), protected: &m.protected}
}

func (mi *mitigatedInjector) OnWriteback(ev cpu.Event) uint64 {
	mask := mi.inner.OnWriteback(ev)
	if mask != 0 && ev.FPUDatapath && mi.protected[ev.FPOp] {
		mi.corrected++
		return 0 // detected and re-executed correctly
	}
	return mask
}

func main() {
	name := "cg"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	f, err := core.New(core.Config{
		Seed:             11,
		RandomOperands:   2000,
		WorkloadOperands: 2500,
	})
	if err != nil {
		log.Fatal(err)
	}
	w, err := workloads.ByName(name, workloads.Small)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := f.CaptureTrace(w)
	if err != nil {
		log.Fatal(err)
	}
	level := vscale.VR20
	wa := f.DevelopWA(level, tr)

	const runs = 50
	baseline, err := f.Evaluate(w, wa, runs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s at %s, unprotected: AVM %.3f (masked %.0f%%)\n",
		w.Name, level.Name, baseline.AVM(), 100*baseline.Fraction(0))

	// AVM-guided protection set: exactly the ops the WA model flags.
	mit := &mitigatedModel{WAModel: wa}
	fmt.Println("protected instruction types (WA-model guided):")
	for _, op := range fpu.Ops() {
		if wa.PerOp[op].ER > 0 {
			mit.protected[op] = true
			fmt.Printf("   %-10s ER %.2e, %.2f%% of dynamic instructions\n",
				op, wa.PerOp[op].ER, 100*tr.OpShare(op))
		}
	}

	mitigated, err := f.Evaluate(w, mit, runs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with selective protection: AVM %.3f\n", mitigated.AVM())
	if mitigated.AVM() != 0 {
		fmt.Println("warning: residual vulnerability (errors outside the characterized set)")
	}

	// Energy accounting from the gate-level power profile (the Voltus
	// substitute): dynamic energy scales with V^2, and re-executing the
	// protected instructions pays their characterized switching energy a
	// second time.
	intU, err := alu.New(f.Lib, f.Cfg.Seed+0xA10)
	if err != nil {
		log.Fatal(err)
	}
	prof := power.Characterize(f.FPU, intU, 120, f.Cfg.Seed^0x90AE)
	base := prof.WorkloadBreakdown(tr)
	var dupFJ float64
	for _, op := range fpu.Ops() {
		if mit.protected[op] {
			dupFJ += float64(tr.OpCounts[op]) * prof.PerOp[op]
		}
	}
	// Two protection disciplines over the same AVM-guided set:
	//   duplication: every protected op re-executes (worst case);
	//   detect+replay (Razor-style): protected ops pay a detection-flop
	//   overhead, and only the (rare) erroneous ones re-execute.
	var protFJ, replayFJ float64
	for _, op := range fpu.Ops() {
		if mit.protected[op] {
			e := float64(tr.OpCounts[op]) * prof.PerOp[op]
			protFJ += e
			replayFJ += e * wa.PerOp[op].ER
		}
	}
	const detectOverhead = 0.15 // error-detection sequentials on protected paths
	supply := f.Volt.SupplyAtReduction(level.Reduction)
	vsq := f.Volt.DynamicPowerRatio(supply)
	dupEnergy := vsq * (base.TotalFJ + dupFJ) / base.TotalFJ
	razorEnergy := vsq * (base.TotalFJ + detectOverhead*protFJ + replayFJ) / base.TotalFJ
	fmt.Printf("\nenergy accounting (gate-level switching energy, relative to nominal):\n")
	fmt.Printf("   nominal voltage, no errors:        1.000  (%.0f nJ dynamic)\n", base.TotalFJ/1e6)
	fmt.Printf("   %s + full duplication:           %.3f  (savings %+.1f%%)\n",
		level.Name, dupEnergy, 100*(1-dupEnergy))
	fmt.Printf("   %s + detect-and-replay:          %.3f  (savings %+.1f%%)\n",
		level.Name, razorEnergy, 100*(1-razorEnergy))
	fmt.Printf("\nAVM-guided detect-and-replay keeps the undervolting win (paper: up to 20%%\n")
	fmt.Printf("energy savings); naive duplication forfeits it on FPU-energy-dominated\n")
	fmt.Printf("kernels — the AVM tells the designer which ops actually need protection.\n")
}
