// Undervolting reproduces the Section V-C use case: using the
// workload-aware model to find, per application, the deepest supply
// reduction that leaves execution undisturbed (AVM = 0), and the dynamic
// power saving that operating point unlocks. Because the framework's
// voltage model is analytic, the sweep is not limited to the paper's two
// corners — it characterizes a whole ladder of reduction levels.
//
// Run with: go run ./examples/undervolting [workload] [steps]
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"teva/internal/core"
	"teva/internal/vscale"
	"teva/internal/workloads"
)

func main() {
	name := "sobel"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	steps := 5
	if len(os.Args) > 2 {
		if v, err := strconv.Atoi(os.Args[2]); err == nil && v > 0 {
			steps = v
		}
	}
	f, err := core.New(core.Config{
		Seed:             7,
		RandomOperands:   2000,
		WorkloadOperands: 2500,
	})
	if err != nil {
		log.Fatal(err)
	}
	w, err := workloads.ByName(name, workloads.Small)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := f.CaptureTrace(w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("voltage ladder for %s (nominal %.2f V)\n", w.Name, f.Volt.VddNominal)
	fmt.Printf("%-8s %-9s %-10s %-12s %-10s %s\n",
		"level", "supply", "delay x", "AVM (WA)", "power", "verdict")

	const runs = 40
	safest := vscale.VRLevel{Name: "nominal", Reduction: 0}
	for i := 1; i <= steps; i++ {
		red := 0.25 * float64(i) / float64(steps) // sweep up to 25% reduction
		level := vscale.VRLevel{Name: fmt.Sprintf("VR%02.0f", red*100), Reduction: red}
		wa := f.DevelopWA(level, tr)
		res, err := f.EvaluateSingle(w, wa, runs)
		if err != nil {
			log.Fatal(err)
		}
		supply := f.Volt.SupplyAtReduction(red)
		verdict := "UNSAFE"
		if res.AVM() == 0 {
			verdict = "safe"
			safest = level
		}
		fmt.Printf("%-8s %6.3f V %9.3fx %12.3f %8.0f%%  %s\n",
			level.Name, supply, f.Volt.ScaleFor(level), res.AVM(),
			100*f.Volt.PowerSavings(supply), verdict)
		if res.AVM() > 0.9 {
			break // everything deeper is certain to fail too
		}
	}

	if safest.Reduction == 0 {
		fmt.Printf("\n%s needs the nominal supply: no undervolting headroom at this granularity\n", w.Name)
		return
	}
	supply := f.Volt.SupplyAtReduction(safest.Reduction)
	fmt.Printf("\nWA-guided operating point for %s: %s (%.3f V) -> %.0f%% dynamic power savings\n",
		w.Name, safest.Name, supply, 100*f.Volt.PowerSavings(supply))
	fmt.Printf("a data-agnostic model would have kept the core at nominal voltage,\n")
	fmt.Printf("forfeiting those savings (the paper's Section V-C conclusion)\n")
}
