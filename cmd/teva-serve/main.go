// Command teva-serve is the campaign-as-a-service front end: an HTTP
// API that runs the same experiment suite as teva-experiments and
// serves the same byte-deterministic reports, with identical concurrent
// submissions deduped onto one computation.
//
// Usage:
//
//	teva-serve [-addr :8080] [-cache-dir DIR] [-max-jobs N]
//	           [-snapshot-every D] [-metrics-out FILE]
//
// API (see README.md for curl examples):
//
//	POST /v1/jobs                  submit a spec (JSON mirroring the CLI flags)
//	GET  /v1/jobs                  list jobs
//	GET  /v1/jobs/{id}             job status and progress
//	POST /v1/jobs/{id}/cancel      graceful cancel (completed cells stay cached)
//	GET  /v1/jobs/{id}/events      progress stream (SSE or NDJSON, ?from=N)
//	GET  /v1/jobs/{id}/result      the deterministic report bytes
//	GET  /v1/jobs/{id}/csv[/NAME]  exported CSV series
//	GET  /v1/jobs/{id}/metrics     the job's obs snapshot (?format=prom)
//	GET  /healthz, /metricsz       server health and serve.* counters
//
// Shutdown mirrors teva-experiments' two-stage handler: the first
// SIGINT/SIGTERM stops accepting jobs, drains in-flight cells into the
// artifact cache, closes the listener once streams end, flushes metrics
// and exits 130; a second signal aborts immediately. With -cache-dir,
// resubmitting the same specs after a restart resumes from the cached
// cells.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"teva/internal/artifact"
	"teva/internal/obs"
	"teva/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheDir := flag.String("cache-dir", "", "persist DTA summaries and campaign cells in this artifact store (shared by all jobs; enables restart resume)")
	maxJobs := flag.Int("max-jobs", 1, "jobs executing concurrently (each job is internally parallel)")
	snapshotEvery := flag.Duration("snapshot-every", 2*time.Second, "period of progress/snapshot events on job streams")
	metricsOut := flag.String("metrics-out", "", "write the server metrics snapshot here on exit (JSON; Prometheus text if the name ends in .prom or .txt)")
	flag.Parse()

	start := time.Now()
	clock := func() int64 { return int64(time.Since(start)) }
	reg := obs.NewRegistry(clock)

	var store *artifact.Store
	if *cacheDir != "" {
		st, err := artifact.OpenIn(*cacheDir, reg)
		if err != nil {
			fatal(err)
		}
		store = st
	}

	srv := serve.New(serve.Config{
		Artifacts:     store,
		Metrics:       reg,
		Clock:         clock,
		MaxConcurrent: *maxJobs,
		SnapshotEvery: *snapshotEvery,
	})
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	// Two-stage shutdown, like teva-experiments: the first signal
	// drains (no new jobs, in-flight cells finish and are cached, the
	// listener closes once idle, metrics still flush, exit 130); a
	// second signal hard-exits.
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigCh
		fmt.Fprintf(os.Stderr,
			"teva-serve: %s received: draining jobs, then shutting down (repeat to abort immediately)\n", sig)
		srv.Drain()
		go func() {
			srv.Wait()
			if err := hs.Shutdown(context.Background()); err != nil {
				fmt.Fprintf(os.Stderr, "teva-serve: shutdown: %v\n", err)
			}
		}()
		sig = <-sigCh
		fmt.Fprintf(os.Stderr, "teva-serve: second %s: aborting now\n", sig)
		os.Exit(130)
	}()

	fmt.Fprintf(os.Stderr, "teva-serve: listening on %s\n", *addr)
	err := hs.ListenAndServe()
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	srv.Wait()
	snap := reg.Snapshot()
	if *metricsOut != "" {
		writeMetrics(*metricsOut, snap)
	}
	fmt.Fprintf(os.Stderr, "%s\n", snap.Summary())
	if srv.Draining() {
		fmt.Fprintln(os.Stderr, "teva-serve: drained; completed cells were flushed to the artifact cache")
		os.Exit(130)
	}
}

// writeMetrics renders the snapshot to path: Prometheus text exposition
// format for .prom/.txt names, the deterministic JSON layout otherwise.
func writeMetrics(path string, snap obs.Snapshot) {
	data := snap.JSON()
	if strings.HasSuffix(path, ".prom") || strings.HasSuffix(path, ".txt") {
		data = snap.PrometheusText()
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "teva-serve:", err)
	os.Exit(1)
}
