// Command teva-worker is the shard worker process behind
// `teva-experiments -shards N` (and any other internal/shard
// supervisor). It is not meant to be launched by hand: the supervisor
// spawns it with -supervisor and -id, it fetches the resolved pipeline
// plan over the lease protocol, rebuilds the experiment substrate, and
// then leases work units (characterization summaries, campaign cells)
// until the supervisor reports the set drained. Every result lands in
// the shared artifact cache directory; the worker's stdout/stderr are
// diagnostics only, piped line-prefixed onto the supervisor's stderr.
//
// Chaos hooks (used by the sharded CI smoke job and tests):
//
//	TEVA_WORKER_KILL_UNIT=SUBSTR   self-SIGKILL when leasing a unit whose
//	                               ID contains SUBSTR (poison-cell drill:
//	                               restarts inherit the variable, so the
//	                               unit strikes out and is quarantined)
//	TEVA_WORKER_KILL_AFTER_UNITS=N self-SIGKILL after completing N units
//	                               (transient-crash drill)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"

	"teva/internal/experiments"
)

func main() {
	supervisor := flag.String("supervisor", "", "coordinator address (host:port), assigned by the supervisor")
	id := flag.String("id", "", "worker identity, assigned by the supervisor")
	flag.Parse()
	if *supervisor == "" || *id == "" {
		fmt.Fprintln(os.Stderr, "teva-worker: -supervisor and -id are required (this binary is spawned by teva-experiments -shards N)")
		os.Exit(2)
	}
	o := experiments.WorkerOptions{
		Supervisor:  *supervisor,
		ID:          *id,
		Diag:        os.Stderr,
		KillUnitSub: os.Getenv("TEVA_WORKER_KILL_UNIT"),
	}
	if v := os.Getenv("TEVA_WORKER_KILL_AFTER_UNITS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			fmt.Fprintf(os.Stderr, "teva-worker: bad TEVA_WORKER_KILL_AFTER_UNITS %q: %v\n", v, err)
			os.Exit(2)
		}
		o.KillAfterUnits = n
	}
	if err := experiments.WorkerMain(context.Background(), o); err != nil {
		fmt.Fprintf(os.Stderr, "teva-worker: %v\n", err)
		os.Exit(1)
	}
}
