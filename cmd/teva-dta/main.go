// Command teva-dta runs the model development phase: dynamic timing
// analysis of the gate-level FPU at a voltage corner, producing an error
// model file (DA, IA, or WA) for later injection campaigns.
//
// Usage:
//
//	teva-dta -model ia -level VR20 -o ia_vr20.json
//	teva-dta -model wa -level VR15 -workload cg -o wa_cg_vr15.json
//	teva-dta -model da -level VR20 -o da_vr20.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"teva/internal/core"
	"teva/internal/dta"
	"teva/internal/errmodel"
	"teva/internal/trace"
	"teva/internal/vscale"
	"teva/internal/workloads"
)

func main() {
	modelName := flag.String("model", "wa", "model family: da, ia, wa")
	levelName := flag.String("level", "VR20", "voltage reduction level: VR15, VR20")
	workloadName := flag.String("workload", "", "benchmark for the WA model (required for -model wa)")
	scaleName := flag.String("scale", "small", "workload scale: tiny, small, full")
	out := flag.String("o", "", "output model file (default stdout)")
	operands := flag.Int("operands", 0, "DTA operands per instruction type (0: default)")
	seed := flag.Uint64("seed", 0xF00D, "master seed")
	exact := flag.Bool("exact", false, "use the event-driven timing engine (slow, reference; same as -timing exact)")
	timing := flag.String("timing", "", "timing engine: wide (default), fast, exact")
	staScreen := flag.Bool("sta-screen", false, "skip dense DTA for ops whose worst STA slack clears the guardband")
	screenGuardband := flag.Float64("screen-guardband", 0, "minimum positive slack in ps an op must clear to be screened (with -sta-screen)")
	screenValidate := flag.Bool("screen-validate", false, "with -sta-screen: still simulate screened ops and fail on any disagreement")
	flag.Parse()

	level, err := parseLevel(*levelName)
	if err != nil {
		fatal(err)
	}
	scale, err := parseScale(*scaleName)
	if err != nil {
		fatal(err)
	}
	eng := dta.EngineWide
	if *exact {
		eng = dta.EngineExact
	}
	if *timing != "" {
		if eng, err = dta.ParseEngine(*timing); err != nil {
			fatal(err)
		}
	}
	f, err := core.New(core.Config{
		Seed:             *seed,
		RandomOperands:   *operands,
		WorkloadOperands: *operands,
		Timing:           eng,
		Screen: dta.ScreenConfig{
			Enabled:   *staScreen,
			Guardband: *screenGuardband,
			Validate:  *screenValidate,
		},
	})
	if err != nil {
		fatal(err)
	}
	start := time.Now()

	var model errmodel.Model
	switch strings.ToLower(*modelName) {
	case "ia":
		model = f.DevelopIA(level)
	case "wa":
		if *workloadName == "" {
			fatal(fmt.Errorf("-model wa requires -workload"))
		}
		w, err := workloads.ByName(*workloadName, scale)
		if err != nil {
			fatal(err)
		}
		tr, err := f.CaptureTrace(w)
		if err != nil {
			fatal(err)
		}
		model = f.DevelopWA(level, tr)
	case "da":
		ws, err := workloads.All(scale)
		if err != nil {
			fatal(err)
		}
		var trs []*trace.Trace
		for _, w := range ws {
			tr, err := f.CaptureTrace(w)
			if err != nil {
				fatal(err)
			}
			trs = append(trs, tr)
		}
		da, err := f.DevelopDA(level, trs)
		if err != nil {
			fatal(err)
		}
		model = da
	default:
		fatal(fmt.Errorf("unknown model %q (da, ia, wa)", *modelName))
	}

	data, err := errmodel.Marshal(model)
	if err != nil {
		fatal(err)
	}
	if *out == "" {
		fmt.Println(string(data))
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "teva-dta: %s (developed in %s)\n",
		model.Describe(), time.Since(start).Round(time.Millisecond))
}

func parseLevel(name string) (vscale.VRLevel, error) {
	for _, lv := range vscale.PaperLevels() {
		if strings.EqualFold(lv.Name, name) {
			return lv, nil
		}
	}
	return vscale.VRLevel{}, fmt.Errorf("unknown level %q (VR15, VR20)", name)
}

func parseScale(name string) (workloads.Scale, error) {
	switch strings.ToLower(name) {
	case "tiny":
		return workloads.Tiny, nil
	case "small":
		return workloads.Small, nil
	case "full":
		return workloads.Full, nil
	}
	return 0, fmt.Errorf("unknown scale %q", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "teva-dta:", err)
	os.Exit(1)
}
