// Command teva-vet runs TEVA's domain-specific static analyzers over the
// repo. It enforces the invariants the experiment pipeline's determinism
// guarantee rests on — see the internal/lint package documentation and
// the "Static invariants" section of DESIGN.md.
//
// Usage:
//
//	teva-vet [flags] [packages...]
//
// Packages default to ./... and accept go-style patterns relative to the
// module root (./internal/..., ./cmd/teva-dta). Matched packages and
// their module-local imports are type-checked in parallel, then the
// whole-program call-graph summaries shared by the interprocedural
// analyzers (detflow, ctxflow, hotalloc) are built once over everything
// loaded, so cross-package source→sink chains are found no matter which
// package the sink lives in.
//
// Flags:
//
//	-list             list analyzers with their one-line docs and exit
//	-json             emit findings as a JSON array (machine-readable)
//	-sarif file       additionally write findings as SARIF 2.1.0 to file
//	                  (uploaded as a CI artifact for code-scanning UIs)
//	-baseline file    suppress findings recorded in the baseline file;
//	                  stale (already-fixed) entries are reported and fail
//	                  the run, so the baseline only ever shrinks
//	-write-baseline file
//	                  write all current findings to file and exit 0 —
//	                  the burn-down starting point for a new analyzer
//	-parallel n       package-loading workers (default GOMAXPROCS)
//
// The exit status is 0 when clean (after baseline filtering), 1 when
// findings are reported, and 2 on load/usage errors. Findings print as
// file:line:col: [analyzer] message, deduplicated and sorted so output is
// byte-identical run to run. Individual findings are suppressed in source
// with `//teva:allow <analyzer>` on the offending line or the line before
// it; whole accepted backlogs live in the baseline file instead.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"teva/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	list := flag.Bool("list", false, "list analyzers and exit")
	sarifOut := flag.String("sarif", "", "write findings as SARIF 2.1.0 to `file`")
	baselinePath := flag.String("baseline", "", "suppress findings recorded in baseline `file`")
	writeBaseline := flag.String("write-baseline", "", "record current findings to baseline `file` and exit")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "package-loading workers")
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return
	}

	var baseline *lint.Baseline
	if *baselinePath != "" {
		b, err := lint.LoadBaseline(*baselinePath)
		if err != nil {
			fatal(err)
		}
		baseline = b
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	loader := lint.NewLoader(root)
	dirs, err := loader.Expand(patterns)
	if err != nil {
		fatal(err)
	}

	pkgs, err := loader.LoadAll(dirs, *parallel)
	if err != nil {
		fatal(err)
	}
	// One summary database over everything the load touched (imports
	// included), shared by every package's interprocedural analyzers.
	prog := lint.BuildProgram(loader.Loaded())

	var findings []lint.Finding
	for _, pkg := range pkgs {
		pkg.Prog = prog
		for _, f := range lint.RunAnalyzers(pkg, analyzers) {
			findings = append(findings, loader.RelFile(f))
		}
	}
	findings = lint.SortFindings(findings)

	if *writeBaseline != "" {
		if err := lint.WriteBaseline(*writeBaseline, findings); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "teva-vet: wrote %d finding(s) to %s\n", len(findings), *writeBaseline)
		return
	}

	var stale []lint.BaselineEntry
	suppressed := 0
	if baseline != nil {
		stale = baseline.Stale(findings)
		findings, suppressed = baseline.Filter(findings)
	}

	if *sarifOut != "" {
		data, err := lint.SARIF(analyzers, findings)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*sarifOut, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}

	if *jsonOut {
		if findings == nil {
			findings = []lint.Finding{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
		if len(findings) > 0 {
			fmt.Fprintf(os.Stderr, "teva-vet: %d finding(s)", len(findings))
			if suppressed > 0 {
				fmt.Fprintf(os.Stderr, " (+%d baselined)", suppressed)
			}
			fmt.Fprintln(os.Stderr)
		}
	}
	for _, e := range stale {
		fmt.Fprintf(os.Stderr, "teva-vet: stale baseline entry (fixed — delete it): [%s] %s: %s\n",
			e.Analyzer, e.File, e.Message)
	}
	// Stale entries fail the run too: the baseline may only shrink, and a
	// leftover entry would mask the finding if the bug ever came back.
	if len(findings) > 0 || len(stale) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "teva-vet:", err)
	os.Exit(2)
}
