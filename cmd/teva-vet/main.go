// Command teva-vet runs TEVA's domain-specific static analyzers over the
// repo. It enforces the invariants the experiment pipeline's determinism
// guarantee rests on — see the internal/lint package documentation and
// the "Determinism invariants and teva-vet" section of DESIGN.md.
//
// Usage:
//
//	teva-vet [-json] [-list] [packages...]
//
// Packages default to ./... and accept go-style patterns relative to the
// module root (./internal/..., ./cmd/teva-dta). The exit status is 0 when
// clean, 1 when findings are reported, and 2 on load/usage errors.
//
// Findings print as file:line:col: [analyzer] message; -json emits a
// machine-readable array for CI tooling. Individual findings are
// suppressed in source with `//teva:allow <analyzer>` on the offending
// line or the line before it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"teva/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	loader := lint.NewLoader(root)
	dirs, err := loader.Expand(patterns)
	if err != nil {
		fatal(err)
	}

	findings := []lint.Finding{}
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			fatal(err)
		}
		for _, f := range lint.RunAnalyzers(pkg, analyzers) {
			findings = append(findings, loader.RelFile(f))
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
		if len(findings) > 0 {
			fmt.Fprintf(os.Stderr, "teva-vet: %d finding(s)\n", len(findings))
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "teva-vet:", err)
	os.Exit(2)
}
