// Command teva-inject runs the application evaluation phase: a
// microarchitectural error-injection campaign for one benchmark under an
// error model, classifying outcomes into Masked/SDC/Crash/Timeout and
// reporting the injected error ratio and the AVM.
//
// The model comes either from a file produced by teva-dta (-model-file)
// or is developed on the fly (-model da|ia|wa).
//
// Usage:
//
//	teva-inject -workload cg -model wa -level VR20 -runs 200
//	teva-inject -workload sobel -model-file ia_vr20.json -runs 1068
//
// With -metrics-out, the campaign's metrics snapshot (dta.* and
// campaign.* counters, phase timers) is written on exit: JSON by
// default, Prometheus text when the file name ends in .prom or .txt.
// -pprof-cpu/-pprof-mem write standard runtime/pprof profiles.
//
// The first SIGINT/SIGTERM cancels the campaign; the metrics snapshot is
// still flushed before the process exits 130. A second signal aborts
// immediately. -max-duration bounds the whole run the same way (exit
// 124).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"teva/internal/campaign"
	"teva/internal/core"
	"teva/internal/errmodel"
	"teva/internal/obs"
	"teva/internal/stats"
	"teva/internal/trace"
	"teva/internal/vscale"
	"teva/internal/workloads"
)

func main() {
	workloadName := flag.String("workload", "", "benchmark to inject into (required)")
	modelName := flag.String("model", "wa", "model family to develop: da, ia, wa")
	modelFile := flag.String("model-file", "", "load a serialized model instead of developing one")
	levelName := flag.String("level", "VR20", "voltage reduction level (when developing)")
	scaleName := flag.String("scale", "small", "workload scale: tiny, small, full")
	runs := flag.Int("runs", 200, "injected executions (paper: 1068)")
	paper := flag.Bool("paper-runs", false, "use the paper's 1068-run statistical setting")
	seed := flag.Uint64("seed", 0xF00D, "master seed")
	metricsOut := flag.String("metrics-out", "", "write the metrics snapshot here on exit (JSON; Prometheus text if the name ends in .prom or .txt)")
	pprofCPU := flag.String("pprof-cpu", "", "write a CPU profile to this file")
	pprofMem := flag.String("pprof-mem", "", "write a heap profile to this file on exit")
	maxDuration := flag.Duration("max-duration", 0, "wall-clock budget; when exceeded, the campaign is canceled and the run exits 124 (0: unlimited)")
	flag.Parse()

	reg := newMetrics()
	stopProfiles := startProfiles(*pprofCPU, *pprofMem)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if *maxDuration > 0 {
		ctx, cancel = context.WithTimeout(ctx, *maxDuration)
		defer cancel()
	}

	// Two-stage shutdown: the first SIGINT/SIGTERM cancels the campaign
	// context (model development and injection runs abort promptly, then
	// main's tail flushes the metrics snapshot); a second signal
	// hard-exits without waiting.
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigCh
		fmt.Fprintf(os.Stderr,
			"teva-inject: %s received: canceling the campaign (repeat to abort immediately)\n", sig)
		cancel()
		sig = <-sigCh
		fmt.Fprintf(os.Stderr, "teva-inject: second %s: aborting now\n", sig)
		os.Exit(130)
	}()

	if *workloadName == "" {
		fatal(fmt.Errorf("-workload is required (one of %v)", workloads.Names()))
	}
	scale, err := parseScale(*scaleName)
	if err != nil {
		fatal(err)
	}
	w, err := workloads.ByName(*workloadName, scale)
	if err != nil {
		fatal(err)
	}
	f, err := core.New(core.Config{Seed: *seed, Metrics: reg})
	if err != nil {
		fatal(err)
	}

	var model errmodel.Model
	if *modelFile != "" {
		data, err := os.ReadFile(*modelFile)
		if err != nil {
			fatal(err)
		}
		model, err = errmodel.Unmarshal(data)
		if err != nil {
			fatal(err)
		}
	} else {
		level, err := parseLevel(*levelName)
		if err != nil {
			fatal(err)
		}
		switch strings.ToLower(*modelName) {
		case "ia":
			m, err := f.DevelopIACtx(ctx, level)
			if err != nil {
				exitOnErr(err, reg, *metricsOut, *maxDuration)
			}
			model = m
		case "wa":
			tr, err := f.CaptureTrace(w)
			if err != nil {
				fatal(err)
			}
			m, err := f.DevelopWACtx(ctx, level, tr)
			if err != nil {
				exitOnErr(err, reg, *metricsOut, *maxDuration)
			}
			model = m
		case "da":
			ws, err := workloads.All(scale)
			if err != nil {
				fatal(err)
			}
			var trs []*trace.Trace
			for _, wl := range ws {
				tr, err := f.CaptureTrace(wl)
				if err != nil {
					fatal(err)
				}
				trs = append(trs, tr)
			}
			model, err = f.DevelopDACtx(ctx, level, trs)
			if err != nil {
				exitOnErr(err, reg, *metricsOut, *maxDuration)
			}
		default:
			fatal(fmt.Errorf("unknown model %q", *modelName))
		}
	}

	n := *runs
	if *paper {
		n = stats.SampleSize(stats.Z95, 0.03)
	}
	fmt.Printf("injecting: %s into %s (%s scale), %d runs\n",
		model.Describe(), w.Name, scale, n)
	start := time.Now()
	res, err := f.EvaluateCtx(ctx, w, model, n)
	if err != nil {
		exitOnErr(err, reg, *metricsOut, *maxDuration)
	}
	fmt.Printf("\ngolden run: %d instructions, %d cycles\n", res.GoldenInstret, res.GoldenCycles)
	fmt.Printf("outcomes over %d runs (%s):\n", res.Runs, time.Since(start).Round(time.Millisecond))
	for o := campaign.Masked; o < campaign.NumOutcomes; o++ {
		lo, hi := res.Wilson(o)
		fmt.Printf("  %-8s %5d  (%5.1f%%, 95%% CI [%.1f%%, %.1f%%])\n",
			o, res.Outcomes[o], 100*res.Fraction(o), 100*lo, 100*hi)
	}
	fmt.Printf("injected errors: %d total across %d runs (ER %.3e per instruction)\n",
		res.InjectedErrors, res.RunsWithInjection, res.ErrorRatio())
	fmt.Printf("AVM (Eq. 4): %.3f\n", res.AVM())
	stopProfiles()
	snap := reg.Snapshot()
	if *metricsOut != "" {
		writeMetrics(*metricsOut, snap)
	}
	fmt.Fprintf(os.Stderr, "%s\n", snap.Summary())
}

// newMetrics builds the run's registry with a real monotonic clock; the
// simulation packages only ever see the injected closure (simpurity bans
// direct time reads there).
func newMetrics() *obs.Registry {
	start := time.Now()
	return obs.NewRegistry(func() int64 { return int64(time.Since(start)) })
}

// startProfiles starts the requested runtime/pprof profiles and returns
// the function that flushes them at end of run.
func startProfiles(cpuPath, memPath string) (stop func()) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fatal(err)
			}
			runtime.GC() // settle the heap so the profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
			f.Close()
		}
	}
}

// writeMetrics renders the snapshot to path: Prometheus text for
// .prom/.txt names, deterministic JSON otherwise.
func writeMetrics(path string, snap obs.Snapshot) {
	data := snap.JSON()
	if strings.HasSuffix(path, ".prom") || strings.HasSuffix(path, ".txt") {
		data = snap.PrometheusText()
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatal(err)
	}
}

func parseLevel(name string) (vscale.VRLevel, error) {
	for _, lv := range vscale.PaperLevels() {
		if strings.EqualFold(lv.Name, name) {
			return lv, nil
		}
	}
	return vscale.VRLevel{}, fmt.Errorf("unknown level %q (VR15, VR20)", name)
}

func parseScale(name string) (workloads.Scale, error) {
	switch strings.ToLower(name) {
	case "tiny":
		return workloads.Tiny, nil
	case "small":
		return workloads.Small, nil
	case "full":
		return workloads.Full, nil
	}
	return 0, fmt.Errorf("unknown scale %q", name)
}

// exitOnErr handles a campaign-phase failure. An orderly stop (canceled
// by signal or an expired -max-duration budget) still flushes the
// metrics snapshot and exits with the conventional code — 130 for a
// signal, 124 for a timeout; any other error is fatal.
func exitOnErr(err error, reg *obs.Registry, metricsOut string, maxDuration time.Duration) {
	canceled := errors.Is(err, context.Canceled)
	deadline := errors.Is(err, context.DeadlineExceeded)
	if !canceled && !deadline {
		fatal(err)
	}
	snap := reg.Snapshot()
	if metricsOut != "" {
		writeMetrics(metricsOut, snap)
	}
	fmt.Fprintf(os.Stderr, "%s\n", snap.Summary())
	code := 130
	reason := "interrupted by signal"
	if deadline {
		code = 124
		reason = fmt.Sprintf("-max-duration %s exceeded", maxDuration)
	}
	fmt.Fprintf(os.Stderr, "teva-inject: campaign stopped early (%s)\n", reason)
	os.Exit(code)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "teva-inject:", err)
	os.Exit(1)
}
