// Command teva-inject runs the application evaluation phase: a
// microarchitectural error-injection campaign for one benchmark under an
// error model, classifying outcomes into Masked/SDC/Crash/Timeout and
// reporting the injected error ratio and the AVM.
//
// The model comes either from a file produced by teva-dta (-model-file)
// or is developed on the fly (-model da|ia|wa).
//
// Usage:
//
//	teva-inject -workload cg -model wa -level VR20 -runs 200
//	teva-inject -workload sobel -model-file ia_vr20.json -runs 1068
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"teva/internal/campaign"
	"teva/internal/core"
	"teva/internal/errmodel"
	"teva/internal/stats"
	"teva/internal/trace"
	"teva/internal/vscale"
	"teva/internal/workloads"
)

func main() {
	workloadName := flag.String("workload", "", "benchmark to inject into (required)")
	modelName := flag.String("model", "wa", "model family to develop: da, ia, wa")
	modelFile := flag.String("model-file", "", "load a serialized model instead of developing one")
	levelName := flag.String("level", "VR20", "voltage reduction level (when developing)")
	scaleName := flag.String("scale", "small", "workload scale: tiny, small, full")
	runs := flag.Int("runs", 200, "injected executions (paper: 1068)")
	paper := flag.Bool("paper-runs", false, "use the paper's 1068-run statistical setting")
	seed := flag.Uint64("seed", 0xF00D, "master seed")
	flag.Parse()

	if *workloadName == "" {
		fatal(fmt.Errorf("-workload is required (one of %v)", workloads.Names()))
	}
	scale, err := parseScale(*scaleName)
	if err != nil {
		fatal(err)
	}
	w, err := workloads.ByName(*workloadName, scale)
	if err != nil {
		fatal(err)
	}
	f, err := core.New(core.Config{Seed: *seed})
	if err != nil {
		fatal(err)
	}

	var model errmodel.Model
	if *modelFile != "" {
		data, err := os.ReadFile(*modelFile)
		if err != nil {
			fatal(err)
		}
		model, err = errmodel.Unmarshal(data)
		if err != nil {
			fatal(err)
		}
	} else {
		level, err := parseLevel(*levelName)
		if err != nil {
			fatal(err)
		}
		switch strings.ToLower(*modelName) {
		case "ia":
			model = f.DevelopIA(level)
		case "wa":
			tr, err := f.CaptureTrace(w)
			if err != nil {
				fatal(err)
			}
			model = f.DevelopWA(level, tr)
		case "da":
			ws, err := workloads.All(scale)
			if err != nil {
				fatal(err)
			}
			var trs []*trace.Trace
			for _, wl := range ws {
				tr, err := f.CaptureTrace(wl)
				if err != nil {
					fatal(err)
				}
				trs = append(trs, tr)
			}
			model, err = f.DevelopDA(level, trs)
			if err != nil {
				fatal(err)
			}
		default:
			fatal(fmt.Errorf("unknown model %q", *modelName))
		}
	}

	n := *runs
	if *paper {
		n = stats.SampleSize(stats.Z95, 0.03)
	}
	fmt.Printf("injecting: %s into %s (%s scale), %d runs\n",
		model.Describe(), w.Name, scale, n)
	start := time.Now()
	res, err := f.Evaluate(w, model, n)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\ngolden run: %d instructions, %d cycles\n", res.GoldenInstret, res.GoldenCycles)
	fmt.Printf("outcomes over %d runs (%s):\n", res.Runs, time.Since(start).Round(time.Millisecond))
	for o := campaign.Masked; o < campaign.NumOutcomes; o++ {
		lo, hi := res.Wilson(o)
		fmt.Printf("  %-8s %5d  (%5.1f%%, 95%% CI [%.1f%%, %.1f%%])\n",
			o, res.Outcomes[o], 100*res.Fraction(o), 100*lo, 100*hi)
	}
	fmt.Printf("injected errors: %d total across %d runs (ER %.3e per instruction)\n",
		res.InjectedErrors, res.RunsWithInjection, res.ErrorRatio())
	fmt.Printf("AVM (Eq. 4): %.3f\n", res.AVM())
}

func parseLevel(name string) (vscale.VRLevel, error) {
	for _, lv := range vscale.PaperLevels() {
		if strings.EqualFold(lv.Name, name) {
			return lv, nil
		}
	}
	return vscale.VRLevel{}, fmt.Errorf("unknown level %q (VR15, VR20)", name)
}

func parseScale(name string) (workloads.Scale, error) {
	switch strings.ToLower(name) {
	case "tiny":
		return workloads.Tiny, nil
	case "small":
		return workloads.Small, nil
	case "full":
		return workloads.Full, nil
	}
	return 0, fmt.Errorf("unknown scale %q", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "teva-inject:", err)
	os.Exit(1)
}
