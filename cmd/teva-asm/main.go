// Command teva-asm assembles, disassembles and runs MRV programs on the
// microarchitectural simulator — the developer tool for writing new
// workloads.
//
// Usage:
//
//	teva-asm run [-trace] prog.s   # assemble and execute (trace to stderr)
//	teva-asm dis prog.s            # assemble and disassemble
//	teva-asm bench <name> [scale]  # dump a built-in benchmark's source
package main

import (
	"fmt"
	"os"

	"teva/internal/cpu"
	"teva/internal/fpu"
	"teva/internal/isa"
	"teva/internal/workloads"
)

func main() {
	if len(os.Args) < 3 {
		usage()
	}
	switch os.Args[1] {
	case "run":
		cfg := cpu.Config{TrapFPInvalid: true}
		file := os.Args[2]
		if file == "-trace" {
			if len(os.Args) < 4 {
				usage()
			}
			cfg.Trace = os.Stderr
			file = os.Args[3]
		}
		prog := assembleFile(file)
		c := cpu.New(prog, cfg)
		res := c.Run(1 << 40)
		os.Stdout.Write(c.Output())
		fmt.Printf("\n-- %v", res.Status)
		if res.Status == cpu.Crashed {
			fmt.Printf(" (%s)", res.Reason)
		}
		if res.Status == cpu.Halted {
			fmt.Printf(" exit=%d", res.ExitCode)
		}
		fmt.Printf("\n-- %d instructions, %d cycles (IPC %.2f)\n",
			res.Instret, res.Cycles, float64(res.Instret)/float64(res.Cycles))
		var fpTotal int64
		for op, n := range res.FPOps {
			if n > 0 {
				fmt.Printf("-- %-10s %d\n", fpu.Op(op), n)
				fpTotal += n
			}
		}
		fmt.Printf("-- fp total: %d (%.1f%%)\n", fpTotal,
			100*float64(fpTotal)/float64(res.Instret))
	case "dis":
		prog := assembleFile(os.Args[2])
		for i, raw := range prog.Text {
			in, err := isa.Decode(raw)
			if err != nil {
				fmt.Printf("%08x: %08x  <illegal>\n", isa.TextBase+uint32(4*i), raw)
				continue
			}
			fmt.Printf("%08x: %08x  %s\n", isa.TextBase+uint32(4*i), raw, isa.Disassemble(in))
		}
	case "bench":
		scale := workloads.Small
		if len(os.Args) > 3 {
			switch os.Args[3] {
			case "tiny":
				scale = workloads.Tiny
			case "full":
				scale = workloads.Full
			}
		}
		w, err := workloads.ByName(os.Args[2], scale)
		if err != nil {
			fatal(err)
		}
		fmt.Print(w.Source)
	default:
		usage()
	}
}

func assembleFile(path string) *isa.Program {
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	prog, err := isa.Assemble(string(src))
	if err != nil {
		fatal(err)
	}
	return prog
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: teva-asm run [-trace]|dis <file.s>  or  teva-asm bench <name> [tiny|small|full]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "teva-asm:", err)
	os.Exit(1)
}
