// Command teva-experiments regenerates the paper's tables and figures
// from the reproduction's substrate. By default it runs every experiment
// at laptop scale; -exp selects one, -quick shrinks everything for a fast
// smoke run, and -full restores the paper's statistical settings (1068
// injections per cell).
//
// Usage:
//
//	teva-experiments [-exp all|table1|table2|fig4..fig10|avm|sources|power|history]
//	                 [-quick] [-full] [-scale tiny|small|full]
//	                 [-runs N] [-seed N] [-workers N]
//	                 [-cache-dir DIR] [-progress] [-max-duration D]
//	                 [-metrics-out FILE] [-pprof-cpu FILE] [-pprof-mem FILE]
//
// With -cache-dir, DTA characterization summaries and campaign cells are
// persisted to an on-disk artifact store keyed by their full provenance
// (seed, scale, sample counts, ...), so a re-run with the same settings
// reloads them instead of re-simulating. -progress periodically reports
// cells completed, cache hits, and elapsed time to stderr.
//
// The run shuts down in an orderly way: the first SIGINT/SIGTERM drains
// (in-flight cells finish and are cached, no new work is dispatched, the
// metrics snapshot and cache stats are still flushed, exit 130); a second
// signal aborts immediately. -max-duration sets a wall-clock budget that
// cancels in-flight work promptly and exits 124. Either way, rerunning
// the same command with the same -cache-dir resumes from the completed
// cells.
//
// With -metrics-out, the run's full metrics snapshot is written on exit:
// JSON by default, Prometheus text exposition format when the file name
// ends in .prom or .txt. All counters and histogram buckets in the
// snapshot are byte-deterministic for a given seed and flag set; the
// phase timers' "nanos" fields are the only wall-clock-dependent values.
// -pprof-cpu/-pprof-mem write standard runtime/pprof profiles for
// `go tool pprof`.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"teva/internal/artifact"
	"teva/internal/core"
	"teva/internal/dta"
	"teva/internal/experiments"
	"teva/internal/obs"
	"teva/internal/vscale"
	"teva/internal/workloads"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiments (all, table1, table2, fig4..fig10, avm, sources, power, history, process, validate, design, adders, corners)")
	quick := flag.Bool("quick", false, "tiny inputs and counts for a fast smoke run")
	full := flag.Bool("full", false, "paper-scale statistics (1068 injections per cell; slow)")
	scaleName := flag.String("scale", "", "workload scale override: tiny, small, full")
	runs := flag.Int("runs", 0, "override injections per campaign cell")
	seed := flag.Uint64("seed", 0xF00D, "master seed")
	workers := flag.Int("workers", 0, "parallel workers (0: all cores)")
	csvDir := flag.String("csv", "", "also write machine-readable CSVs into this directory")
	cacheDir := flag.String("cache-dir", "", "persist DTA summaries and campaign cells in this artifact store")
	progress := flag.Bool("progress", false, "periodically report matrix progress and cache hits to stderr")
	metricsOut := flag.String("metrics-out", "", "write the metrics snapshot here on exit (JSON; Prometheus text if the name ends in .prom or .txt)")
	pprofCPU := flag.String("pprof-cpu", "", "write a CPU profile to this file")
	pprofMem := flag.String("pprof-mem", "", "write a heap profile to this file on exit")
	maxDuration := flag.Duration("max-duration", 0, "wall-clock budget; when exceeded, in-flight work is canceled and the run exits 124 (0: unlimited)")
	timing := flag.String("timing", "wide", "DTA timing engine: wide (64-lane, default), fast (scalar reference), exact (event-driven, slow)")
	cornerSpec := flag.String("corners", "", "corners for the multi-corner STA sweep: named corners (nominal, VR15, VR20) and/or supply voltages in volts, comma-separated (default: nominal,VR15,VR20)")
	staScreen := flag.Bool("sta-screen", false, "skip dense DTA for ops whose worst STA slack clears the guardband (screened ops are reported error-free)")
	screenGuardband := flag.Float64("screen-guardband", 0, "minimum positive slack in ps an op must clear to be screened (with -sta-screen)")
	screenValidate := flag.Bool("screen-validate", false, "with -sta-screen: still simulate screened ops and fail on any disagreement with the slack screen")
	flag.Parse()

	eng, err := dta.ParseEngine(*timing)
	if err != nil {
		fatal(err)
	}
	reg := newMetrics()
	stopProfiles := startProfiles(*pprofCPU, *pprofMem)

	opts := experiments.DefaultOptions()
	cfg := core.Config{
		Seed: *seed, Workers: *workers, Metrics: reg, Timing: eng,
		Screen: dta.ScreenConfig{
			Enabled:   *staScreen,
			Guardband: *screenGuardband,
			Validate:  *screenValidate,
		},
	}
	switch {
	case *quick:
		opts.Scale = workloads.Tiny
		opts.Runs = 24
		opts.Fig4Paths = 300
		opts.Fig6Full = 4000
		opts.Fig6Ks = []int{500, 2000}
		cfg.RandomOperands = 4000
		cfg.WorkloadOperands = 2000
	case *full:
		opts = experiments.PaperOptions()
		cfg.RandomOperands = 100000
		cfg.WorkloadOperands = 40000
	}
	switch *scaleName {
	case "tiny":
		opts.Scale = workloads.Tiny
	case "small":
		opts.Scale = workloads.Small
	case "full":
		opts.Scale = workloads.Full
	case "":
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	if *runs > 0 {
		opts.Runs = *runs
	}
	if *cacheDir != "" {
		store, err := artifact.OpenIn(*cacheDir, reg)
		if err != nil {
			fatal(err)
		}
		cfg.Artifacts = store
	}

	ctx := context.Background()
	if *maxDuration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *maxDuration)
		defer cancel()
	}

	start := time.Now()
	fmt.Printf("teva-experiments: scale=%s runs/cell=%d seed=%#x\n",
		opts.Scale, opts.Runs, *seed)
	f, err := core.New(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("substrate: %d-gate FPU calibrated to CLK %.0f ps (built in %s)\n",
		f.FPU.NumGates(), f.FPU.CLK, time.Since(start).Round(time.Millisecond))
	env := experiments.NewEnvContext(ctx, f, opts)
	out := os.Stdout

	// Two-stage shutdown: the first SIGINT/SIGTERM drains — in-flight
	// cells finish and land in the artifact cache, remaining dispatch
	// stops, and the tail of main still flushes metrics and cache stats.
	// A second signal hard-exits without waiting.
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigCh
		fmt.Fprintf(os.Stderr,
			"teva-experiments: %s received: draining in-flight cells, then flushing (repeat to abort immediately)\n", sig)
		env.Drain()
		sig = <-sigCh
		fmt.Fprintf(os.Stderr, "teva-experiments: second %s: aborting now\n", sig)
		os.Exit(130)
	}()

	if *progress {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			tick := time.NewTicker(2 * time.Second)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					p := env.Progress()
					fmt.Fprintf(os.Stderr,
						"progress: cells %d/%d (%d from cache) | store: %s | elapsed %s\n",
						p.CellsDone, p.CellsTotal, p.CellsCached, p.Cache,
						time.Since(start).Round(time.Second))
				}
			}
		}()
	}

	selected := map[string]bool{}
	for _, name := range strings.Split(*exp, ",") {
		selected[strings.TrimSpace(name)] = true
	}
	want := func(name string) bool { return selected["all"] || selected[name] }
	interrupted := false
	run := func(name string, fn func() error) {
		if !want(name) || interrupted {
			return
		}
		if env.Draining() {
			interrupted = true
			return
		}
		t0 := time.Now()
		sp := reg.Phase("exp/" + name)
		if err := fn(); err != nil {
			if isInterrupt(err) {
				interrupted = true
				fmt.Fprintf(os.Stderr, "teva-experiments: %s interrupted: %v\n", name, err)
				return
			}
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		sp.End()
		fmt.Printf("[%s completed in %s]\n", name, time.Since(t0).Round(time.Millisecond))
	}

	run("design", func() error {
		rows, err := experiments.Design(env)
		if err != nil {
			return err
		}
		experiments.RenderDesign(out, env, rows)
		if *csvDir != "" {
			return experiments.CSVDesign(*csvDir, rows)
		}
		return nil
	})
	run("corners", func() error {
		corners, err := experiments.ParseCorners(*cornerSpec)
		if err != nil {
			return err
		}
		rows, err := experiments.CornerSweep(env, corners)
		if err != nil {
			return err
		}
		cached := 0
		for _, r := range rows {
			if r.Cached {
				cached++
			}
		}
		// Cache-dependent, so stderr: stdout must stay identical between
		// cold and warm runs.
		fmt.Fprintf(os.Stderr, "corner reports reloaded %d/%d\n", cached, len(rows))
		experiments.RenderCorners(out, env, rows)
		if *csvDir != "" {
			return experiments.CSVCorners(*csvDir, rows)
		}
		return nil
	})
	run("table1", func() error { experiments.Table1(out); return nil })
	run("table2", func() error {
		rows, err := experiments.Table2(env)
		if err != nil {
			return err
		}
		experiments.RenderTable2(out, rows)
		if *csvDir != "" {
			return experiments.CSVTable2(*csvDir, rows)
		}
		return nil
	})
	run("fig4", func() error {
		r, err := experiments.Fig4(env)
		if err != nil {
			return err
		}
		if r.Truncated {
			fmt.Fprintf(os.Stderr,
				"teva-experiments: fig4 path enumeration hit its expansion budget before yielding %d paths per stage; tail counts may undercount some units\n",
				env.Opts.Fig4Paths)
		}
		experiments.RenderFig4(out, r)
		if *csvDir != "" {
			return experiments.CSVFig4(*csvDir, r)
		}
		return nil
	})
	run("fig5", func() error {
		r, err := experiments.Fig5(env)
		if err != nil {
			return err
		}
		experiments.RenderFig5(out, r)
		if *csvDir != "" {
			return experiments.CSVFig5(*csvDir, r)
		}
		return nil
	})
	run("fig6", func() error {
		r, err := experiments.Fig6(env)
		if err != nil {
			return err
		}
		experiments.RenderFig6(out, r)
		if *csvDir != "" {
			return experiments.CSVFig6(*csvDir, r)
		}
		return nil
	})
	run("fig7", func() error {
		r, err := experiments.Fig7(env)
		if err != nil {
			return err
		}
		experiments.RenderFig7(out, r)
		if *csvDir != "" {
			return experiments.CSVFig7(*csvDir, r)
		}
		return nil
	})
	run("fig8", func() error {
		r, err := experiments.Fig8(env)
		if err != nil {
			return err
		}
		experiments.RenderFig8(out, r)
		if *csvDir != "" {
			return experiments.CSVFig8(*csvDir, r)
		}
		return nil
	})
	run("sources", func() error {
		rows, err := experiments.Sources(env)
		if err != nil {
			return err
		}
		experiments.RenderSources(out, rows)
		if *csvDir != "" {
			return experiments.CSVSources(*csvDir, rows)
		}
		return nil
	})
	run("power", func() error {
		r, err := experiments.Power(env)
		if err != nil {
			return err
		}
		experiments.RenderPower(out, r)
		if *csvDir != "" {
			return experiments.CSVPower(*csvDir, r)
		}
		return nil
	})
	run("process", func() error {
		r, err := experiments.ProcessVariation(env, 8, 0.04)
		if err != nil {
			return err
		}
		experiments.RenderProcess(out, r)
		if *csvDir != "" {
			return experiments.CSVProcess(*csvDir, r)
		}
		return nil
	})
	run("validate", func() error {
		rows, meanErr, err := experiments.Validate(env, vscale.VR20)
		if err != nil {
			return err
		}
		experiments.RenderValidate(out, "VR20", rows, meanErr)
		if *csvDir != "" {
			return experiments.CSVValidate(*csvDir, rows)
		}
		return nil
	})
	run("adders", func() error {
		rows, err := experiments.AdderAblation(env)
		if err != nil {
			return err
		}
		experiments.RenderAdders(out, rows)
		if *csvDir != "" {
			return experiments.CSVAdders(*csvDir, rows)
		}
		return nil
	})
	run("history", func() error {
		rows, err := experiments.HistoryAblation(env, vscale.VR20)
		if err != nil {
			return err
		}
		experiments.RenderHistory(out, "VR20", rows)
		return nil
	})

	run("fig10", func() error {
		r, err := experiments.Fig10(env)
		if err != nil {
			return err
		}
		experiments.RenderFig10(out, workloads.Names(), r)
		if *csvDir != "" {
			return experiments.CSVFig10(*csvDir, workloads.Names(), r)
		}
		return nil
	})
	if (want("fig9") || want("avm")) && !interrupted && !env.Draining() {
		sp := reg.Phase("exp/campaigns")
		cs, err := experiments.RunCampaigns(env)
		switch {
		case err == nil:
			sp.End()
		case isInterrupt(err):
			// Completed cells are already in the cache; rendering a
			// partial matrix would make stdout depend on the abort
			// point, so skip the figures and report on stderr.
			interrupted = true
			fmt.Fprintf(os.Stderr, "teva-experiments: campaigns interrupted: %v\n", err)
		default:
			fatal(err)
		}
		run("fig9", func() error {
			experiments.RenderFig9(out, cs)
			if *csvDir != "" {
				return experiments.CSVFig9(*csvDir, cs)
			}
			return nil
		})
		run("avm", func() error {
			r, err := experiments.AVMAnalysis(env, cs)
			if err != nil {
				return err
			}
			experiments.RenderAVM(out, env, cs, r)
			if *csvDir != "" {
				return experiments.CSVAVM(*csvDir, cs, r)
			}
			return nil
		})
	}
	if *cacheDir != "" {
		p := env.Progress()
		fmt.Fprintf(os.Stderr, "artifact cache (%s): %s; campaign cells reloaded %d/%d\n",
			*cacheDir, p.Cache, p.CellsCached, p.CellsDone)
	}
	stopProfiles()
	snap := reg.Snapshot()
	if *metricsOut != "" {
		writeMetrics(*metricsOut, snap)
	}
	// Diagnostic, and cache-dependent (a warm cache skips work): stderr,
	// like the cache-stats line, so stdout stays run-to-run identical.
	fmt.Fprintf(os.Stderr, "%s\n", snap.Summary())
	if interrupted || env.Draining() {
		code := 130
		reason := "interrupted by signal"
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			code = 124
			reason = fmt.Sprintf("-max-duration %s exceeded", *maxDuration)
		}
		fmt.Fprintf(os.Stderr, "teva-experiments: run stopped early (%s); completed cells were flushed\n", reason)
		if *cacheDir != "" {
			fmt.Fprintf(os.Stderr, "teva-experiments: resume by rerunning the same command with -cache-dir %s (finished cells reload from cache)\n", *cacheDir)
		} else {
			fmt.Fprintln(os.Stderr, "teva-experiments: add -cache-dir DIR to make interrupted runs resumable")
		}
		os.Exit(code)
	}
	fmt.Printf("total wall time: %s\n", time.Since(start).Round(time.Millisecond))
}

// isInterrupt reports whether err is (or wraps) one of the orderly-stop
// sentinels — a drained run, a canceled context, or an expired
// -max-duration budget — as opposed to a real per-cell failure.
func isInterrupt(err error) bool {
	return errors.Is(err, experiments.ErrDrained) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)
}

// newMetrics builds the run's registry with a real monotonic clock. The
// simulation packages never read time themselves (the simpurity analyzer
// forbids it); the clock closure is injected from here.
func newMetrics() *obs.Registry {
	start := time.Now()
	return obs.NewRegistry(func() int64 { return int64(time.Since(start)) })
}

// startProfiles starts the requested runtime/pprof profiles and returns
// the function that flushes them at end of run.
func startProfiles(cpuPath, memPath string) (stop func()) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fatal(err)
			}
			runtime.GC() // settle the heap so the profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
			f.Close()
		}
	}
}

// writeMetrics renders the snapshot to path: Prometheus text exposition
// format for .prom/.txt names, the deterministic JSON layout otherwise.
func writeMetrics(path string, snap obs.Snapshot) {
	data := snap.JSON()
	if strings.HasSuffix(path, ".prom") || strings.HasSuffix(path, ".txt") {
		data = snap.PrometheusText()
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "teva-experiments:", err)
	os.Exit(1)
}
