// Command teva-experiments regenerates the paper's tables and figures
// from the reproduction's substrate. By default it runs every experiment
// at laptop scale; -exp selects one, -quick shrinks everything for a fast
// smoke run, and -full restores the paper's statistical settings (1068
// injections per cell).
//
// Usage:
//
//	teva-experiments [-exp all|table1|table2|fig4..fig10|avm|sources|power|history]
//	                 [-quick] [-full] [-scale tiny|small|full]
//	                 [-runs N] [-seed N] [-workers N]
//	                 [-cache-dir DIR] [-progress] [-max-duration D]
//	                 [-shards N] [-worker-bin FILE]
//	                 [-metrics-out FILE] [-pprof-cpu FILE] [-pprof-mem FILE]
//
// With -cache-dir, DTA characterization summaries and campaign cells are
// persisted to an on-disk artifact store keyed by their full provenance
// (seed, scale, sample counts, ...), so a re-run with the same settings
// reloads them instead of re-simulating. -progress periodically reports
// cells completed, cache hits, and elapsed time to stderr.
//
// With -shards N (requires -cache-dir), N supervised teva-worker
// processes prewarm the cache with lease-tracked work units before the
// suite runs; crashed workers are restarted, poison units quarantined by
// name, and stdout stays byte-identical to an unsharded run (see
// DESIGN.md "Process supervision").
//
// The run shuts down in an orderly way: the first SIGINT/SIGTERM drains
// (in-flight cells finish and are cached, no new work is dispatched, the
// metrics snapshot and cache stats are still flushed, exit 130); a second
// signal aborts immediately. -max-duration sets a wall-clock budget that
// cancels in-flight work promptly and exits 124. Either way, rerunning
// the same command with the same -cache-dir resumes from the completed
// cells.
//
// With -metrics-out, the run's full metrics snapshot is written on exit:
// JSON by default, Prometheus text exposition format when the file name
// ends in .prom or .txt. All counters and histogram buckets in the
// snapshot are byte-deterministic for a given seed and flag set; the
// phase timers' "nanos" fields are the only wall-clock-dependent values.
// -pprof-cpu/-pprof-mem write standard runtime/pprof profiles for
// `go tool pprof`.
//
// The experiment dispatch itself lives in experiments.RunSuite, shared
// with the teva-serve HTTP front end; this binary owns only flags,
// signal handling, progress reporting, and profile/metrics flushing.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"
	"time"

	"teva/internal/artifact"
	"teva/internal/core"
	"teva/internal/dta"
	"teva/internal/experiments"
	"teva/internal/obs"
	"teva/internal/workloads"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiments (all, table1, table2, fig4..fig10, avm, sources, power, history, process, validate, design, adders, corners)")
	quick := flag.Bool("quick", false, "tiny inputs and counts for a fast smoke run")
	full := flag.Bool("full", false, "paper-scale statistics (1068 injections per cell; slow)")
	scaleName := flag.String("scale", "", "workload scale override: tiny, small, full")
	runs := flag.Int("runs", 0, "override injections per campaign cell")
	seed := flag.Uint64("seed", 0xF00D, "master seed")
	workers := flag.Int("workers", 0, "parallel workers (0: all cores)")
	csvDir := flag.String("csv", "", "also write machine-readable CSVs into this directory")
	cacheDir := flag.String("cache-dir", "", "persist DTA summaries and campaign cells in this artifact store")
	progress := flag.Bool("progress", false, "periodically report matrix progress and cache hits to stderr")
	metricsOut := flag.String("metrics-out", "", "write the metrics snapshot here on exit (JSON; Prometheus text if the name ends in .prom or .txt)")
	pprofCPU := flag.String("pprof-cpu", "", "write a CPU profile to this file")
	pprofMem := flag.String("pprof-mem", "", "write a heap profile to this file on exit")
	maxDuration := flag.Duration("max-duration", 0, "wall-clock budget; when exceeded, in-flight work is canceled and the run exits 124 (0: unlimited)")
	timing := flag.String("timing", "wide", "DTA timing engine: wide (64-lane, default), fast (scalar reference), exact (event-driven, slow)")
	cornerSpec := flag.String("corners", "", "corners for the multi-corner STA sweep: named corners (nominal, VR15, VR20) and/or supply voltages in volts, comma-separated (default: nominal,VR15,VR20)")
	staScreen := flag.Bool("sta-screen", false, "skip dense DTA for ops whose worst STA slack clears the guardband (screened ops are reported error-free)")
	screenGuardband := flag.Float64("screen-guardband", 0, "minimum positive slack in ps an op must clear to be screened (with -sta-screen)")
	screenValidate := flag.Bool("screen-validate", false, "with -sta-screen: still simulate screened ops and fail on any disagreement with the slack screen")
	shards := flag.Int("shards", 0, "prewarm the -cache-dir with this many supervised teva-worker processes before the suite runs (needs -cache-dir; crashed workers are restarted, poison units quarantined, and the report stays byte-identical to an unsharded run)")
	workerBin := flag.String("worker-bin", "", "teva-worker executable for -shards (default: next to this binary, then $PATH)")
	shardKillAfter := flag.String("shard-kill-after", "", "chaos drill: SIGKILL one live worker after N prewarm units complete (testing only)")
	flag.Parse()

	eng, err := dta.ParseEngine(*timing)
	if err != nil {
		fatal(err)
	}
	progStart := time.Now()
	clock := func() int64 { return int64(time.Since(progStart)) }
	reg := obs.NewRegistry(clock)
	stopProfiles := startProfiles(*pprofCPU, *pprofMem)

	opts := experiments.DefaultOptions()
	cfg := core.Config{
		Seed: *seed, Workers: *workers, Metrics: reg, Timing: eng,
		Screen: dta.ScreenConfig{
			Enabled:   *staScreen,
			Guardband: *screenGuardband,
			Validate:  *screenValidate,
		},
	}
	experiments.ApplyPreset(*quick, *full, &opts, &cfg)
	if *scaleName != "" {
		sc, err := workloads.ParseScale(*scaleName)
		if err != nil {
			fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleName)
			os.Exit(2)
		}
		opts.Scale = sc
	}
	if *runs > 0 {
		opts.Runs = *runs
	}
	if *cacheDir != "" {
		store, err := artifact.OpenIn(*cacheDir, reg)
		if err != nil {
			fatal(err)
		}
		cfg.Artifacts = store
	}

	ctx := context.Background()
	if *maxDuration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *maxDuration)
		defer cancel()
	}

	start := time.Now()
	experiments.PrintBanner(os.Stdout, opts, *seed)
	f, err := core.New(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("substrate: %d-gate FPU calibrated to CLK %.0f ps (built in %s)\n",
		f.FPU.NumGates(), f.FPU.CLK, time.Since(start).Round(time.Millisecond))
	env := experiments.NewEnvContext(ctx, f, opts)

	// Two-stage shutdown: the first SIGINT/SIGTERM drains — in-flight
	// cells finish and land in the artifact cache, remaining dispatch
	// stops, and the tail of main still flushes metrics and cache stats.
	// A second signal hard-exits without waiting.
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigCh
		fmt.Fprintf(os.Stderr,
			"teva-experiments: %s received: draining in-flight cells, then flushing (repeat to abort immediately)\n", sig)
		env.Drain()
		sig = <-sigCh
		fmt.Fprintf(os.Stderr, "teva-experiments: second %s: aborting now\n", sig)
		os.Exit(130)
	}()

	if *progress {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			tick := time.NewTicker(2 * time.Second)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					p := env.Progress()
					fmt.Fprintf(os.Stderr,
						"progress: cells %d/%d (%d from cache) | store: %s | elapsed %s\n",
						p.CellsDone, p.CellsTotal, p.CellsCached, p.Cache,
						time.Since(start).Round(time.Second))
				}
			}
		}()
	}

	suiteCfg := experiments.SuiteConfig{
		Experiments: strings.Split(*exp, ","),
		CornerSpec:  *cornerSpec,
		CSVDir:      *csvDir,
		OmitBanner:  true, // printed above, before the slow substrate build
		Trace:       os.Stdout,
		Diag:        os.Stderr,
		Clock:       clock,
	}
	if *shards > 1 {
		suiteCfg.Shards = *shards
		suiteCfg.ShardWorkerBin = resolveWorkerBin(*workerBin)
		if *shardKillAfter != "" {
			n, err := strconv.Atoi(*shardKillAfter)
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "bad -shard-kill-after %q\n", *shardKillAfter)
				os.Exit(2)
			}
			suiteCfg.ShardKillAfterUnits = n
		}
	}
	suiteErr := experiments.RunSuite(env, suiteCfg, os.Stdout)
	interrupted := false
	if suiteErr != nil {
		if !experiments.IsInterrupt(suiteErr) {
			fatal(suiteErr)
		}
		interrupted = true
	}

	if *cacheDir != "" {
		p := env.Progress()
		fmt.Fprintf(os.Stderr, "artifact cache (%s): %s; campaign cells reloaded %d/%d\n",
			*cacheDir, p.Cache, p.CellsCached, p.CellsDone)
	}
	stopProfiles()
	snap := reg.Snapshot()
	if *metricsOut != "" {
		writeMetrics(*metricsOut, snap)
	}
	// Diagnostic, and cache-dependent (a warm cache skips work): stderr,
	// like the cache-stats line, so stdout stays run-to-run identical.
	fmt.Fprintf(os.Stderr, "%s\n", snap.Summary())
	if interrupted || env.Draining() {
		code := 130
		reason := "interrupted by signal"
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			code = 124
			reason = fmt.Sprintf("-max-duration %s exceeded", *maxDuration)
		}
		fmt.Fprintf(os.Stderr, "teva-experiments: run stopped early (%s); completed cells were flushed\n", reason)
		if *cacheDir != "" {
			fmt.Fprintf(os.Stderr, "teva-experiments: resume by rerunning the same command with -cache-dir %s (finished cells reload from cache)\n", *cacheDir)
		} else {
			fmt.Fprintln(os.Stderr, "teva-experiments: add -cache-dir DIR to make interrupted runs resumable")
		}
		os.Exit(code)
	}
	fmt.Printf("total wall time: %s\n", time.Since(start).Round(time.Millisecond))
}

// resolveWorkerBin locates the teva-worker executable for -shards:
// explicit -worker-bin wins, then a sibling of this binary (the normal
// `go build ./...` layout), then $PATH. An unresolvable worker is left
// empty — the suite notes it on stderr and runs in-process.
func resolveWorkerBin(explicit string) string {
	if explicit != "" {
		return explicit
	}
	if self, err := os.Executable(); err == nil {
		sibling := filepath.Join(filepath.Dir(self), "teva-worker")
		if st, err := os.Stat(sibling); err == nil && !st.IsDir() {
			return sibling
		}
	}
	if p, err := exec.LookPath("teva-worker"); err == nil {
		return p
	}
	return ""
}

// startProfiles starts the requested runtime/pprof profiles and returns
// the function that flushes them at end of run.
func startProfiles(cpuPath, memPath string) (stop func()) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fatal(err)
			}
			runtime.GC() // settle the heap so the profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
			f.Close()
		}
	}
}

// writeMetrics renders the snapshot to path: Prometheus text exposition
// format for .prom/.txt names, the deterministic JSON layout otherwise.
func writeMetrics(path string, snap obs.Snapshot) {
	data := snap.JSON()
	if strings.HasSuffix(path, ".prom") || strings.HasSuffix(path, ".txt") {
		data = snap.PrometheusText()
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "teva-experiments:", err)
	os.Exit(1)
}
