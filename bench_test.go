// Package teva's root benchmark harness: one testing.B benchmark per
// table and figure of the paper (wired to the same code paths the
// teva-experiments binary uses), plus component benchmarks for the
// substrates (gate-level timing simulation, DTA, the CPU model, the
// assembler). Run with:
//
//	go test -bench=. -benchmem
package teva

import (
	"io"
	"sync"
	"testing"
	"time"

	"teva/internal/campaign"
	"teva/internal/core"
	"teva/internal/cpu"
	"teva/internal/dta"
	"teva/internal/errmodel"
	"teva/internal/experiments"
	"teva/internal/fpu"
	"teva/internal/isa"
	"teva/internal/logicsim"
	"teva/internal/prng"
	"teva/internal/sta"
	"teva/internal/timingsim"
	"teva/internal/vscale"
	"teva/internal/workloads"
)

// Shared environment: built once, sized so individual benchmark
// iterations are meaningful but quick.
var (
	envOnce sync.Once
	benv    *experiments.Env
)

func benchEnv(b *testing.B) *experiments.Env {
	b.Helper()
	envOnce.Do(func() {
		f, err := core.New(core.Config{
			Seed:             0xF00D,
			RandomOperands:   2000,
			WorkloadOperands: 1200,
			DASample:         100000,
		})
		if err != nil {
			panic(err)
		}
		benv = experiments.NewEnv(f, experiments.Options{
			Scale:     workloads.Tiny,
			Runs:      12,
			Fig4Paths: 1000,
			Fig6Full:  2000,
			Fig6Ks:    []int{500},
			Fig6Reps:  1,
		})
	})
	return benv
}

// BenchmarkTable2Workloads measures the golden execution of the full
// benchmark suite (the data behind Table II).
func BenchmarkTable2Workloads(b *testing.B) {
	ws, err := workloads.All(workloads.Tiny)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var instr int64
	for i := 0; i < b.N; i++ {
		for _, w := range ws {
			c := cpu.New(w.Program, cpu.Config{TrapFPInvalid: true})
			res := c.Run(1 << 40)
			if res.Status != cpu.Halted {
				b.Fatalf("%s: %v", w.Name, res.Status)
			}
			instr += res.Instret
		}
	}
	b.ReportMetric(float64(instr)/float64(b.N), "instrs/op")
}

// BenchmarkFig4STA measures the 1000-longest-path enumeration.
func BenchmarkFig4STA(b *testing.B) {
	e := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4(e)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Paths) == 0 {
			b.Fatal("no paths")
		}
	}
}

// BenchmarkFig5FlipDistribution measures the DTA batch behind the
// bit-flip multiplicity histogram (per-op gate-level analysis).
func BenchmarkFig5FlipDistribution(b *testing.B) {
	e := benchEnv(b)
	src := prng.New(1)
	pairs := make([]dta.Pair, 200)
	for i := range pairs {
		pairs[i] = dta.Pair{A: src.Uint64(), B: src.Uint64()}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recs := dta.AnalyzeStream(e.F.FPU, fpu.DMul, e.F.Volt, vscale.VR20, false, pairs, 0)
		dta.Summarize(fpu.DMul, recs)
	}
	b.ReportMetric(float64(len(pairs)), "dta-ops/op")
}

// BenchmarkFig6BERConvergence measures the sample-size study.
func BenchmarkFig6BERConvergence(b *testing.B) {
	e := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7IAModel measures instruction-aware model development
// (random-operand DTA across all 12 instructions).
func BenchmarkFig7IAModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// Characterization is cached per level inside a framework, so
		// measure the cold pass on a fresh framework each iteration.
		f, err := core.New(core.Config{Seed: uint64(i) + 1, RandomOperands: 500})
		if err != nil {
			b.Fatal(err)
		}
		f.DevelopIA(vscale.VR20)
	}
}

// BenchmarkFig8WAModel measures workload-aware model development for one
// benchmark (trace capture + workload DTA).
func BenchmarkFig8WAModel(b *testing.B) {
	e := benchEnv(b)
	w, err := workloads.ByName("is", workloads.Tiny)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := e.F.CaptureTrace(w)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.F.DevelopWA(vscale.VR20, tr)
	}
}

// BenchmarkFig9Campaign measures one injection-campaign cell (golden run
// + injected runs + classification).
func BenchmarkFig9Campaign(b *testing.B) {
	e := benchEnv(b)
	w, err := workloads.ByName("sobel", workloads.Tiny)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := e.F.CaptureTrace(w)
	if err != nil {
		b.Fatal(err)
	}
	wa := e.F.DevelopWA(vscale.VR20, tr)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.F.Evaluate(w, wa, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10ErrorRatios measures the error-ratio/divergence math over
// a cached campaign set.
func BenchmarkFig10ErrorRatios(b *testing.B) {
	e := benchEnv(b)
	if _, err := experiments.Fig10(e); err != nil { // warm the model caches
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig10(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAVMAnalysis measures the Section V-C vulnerability analysis
// over a cached campaign set.
func BenchmarkAVMAnalysis(b *testing.B) {
	e := benchEnv(b)
	cs, err := experiments.RunCampaigns(e)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.AVMAnalysis(e, cs)
		if err != nil {
			b.Fatal(err)
		}
		experiments.RenderAVM(io.Discard, e, cs, r)
	}
}

// ---------------------------------------------------------------------------
// Component benchmarks

// BenchmarkTimingSimFast measures the levelized timing engine on the
// multiplier CPA stage (the design's critical stage).
func BenchmarkTimingSimFast(b *testing.B) {
	benchTimingSim(b, false)
}

// BenchmarkTimingSimExact measures the event-driven engine on the same
// stage.
func BenchmarkTimingSimExact(b *testing.B) {
	benchTimingSim(b, true)
}

func benchTimingSim(b *testing.B, exact bool) {
	e := benchEnv(b)
	p := e.F.FPU.Pipeline(fpu.DMul)
	stage := p.Stages[3].N // s4-cpa
	var sim timingsim.Runner
	if exact {
		sim = timingsim.NewExact(stage.Compiled(), 1.256)
	} else {
		sim = timingsim.NewFast(stage.Compiled(), 1.256)
	}
	src := prng.New(7)
	prev := make([]bool, len(stage.Inputs()))
	cur := make([]bool, len(stage.Inputs()))
	for i := range prev {
		prev[i] = src.Bool()
		cur[i] = src.Bool()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Run(prev, cur, 85, 4400)
	}
	b.ReportMetric(float64(stage.NumGates()), "gates")
}

// BenchmarkTimingSimWide measures the 64-lane levelized timing engine on
// the same stage; ns/transition counts all 64 lanes of each walk.
func BenchmarkTimingSimWide(b *testing.B) {
	e := benchEnv(b)
	stage := e.F.FPU.Pipeline(fpu.DMul).Stages[3].N // s4-cpa
	sim := timingsim.NewWideFast(stage.Compiled(), 1.256)
	src := prng.New(7)
	prev := make([]uint64, len(stage.Inputs()))
	cur := make([]uint64, len(stage.Inputs()))
	for i := range prev {
		prev[i] = src.Uint64()
		cur[i] = src.Uint64()
	}
	b.ReportAllocs()
	start := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Run(prev, cur, 85, 4400)
	}
	b.StopTimer()
	b.ReportMetric(float64(time.Since(start).Nanoseconds())/float64(b.N*64), "ns/transition")
	b.ReportMetric(float64(stage.NumGates()), "gates")
}

// BenchmarkSTAForwardBackward measures the two-pass slack engine
// (forward arrival plus backward required-time propagation) across every
// stage of the double-precision multiplier pipeline, the design's
// deepest. One iteration is a full per-net slack characterization of the
// whole pipeline.
func BenchmarkSTAForwardBackward(b *testing.B) {
	e := benchEnv(b)
	p := e.F.FPU.Pipeline(fpu.DMul)
	lib := e.F.Lib
	clk := e.F.FPU.CLK
	var gates int
	for _, s := range p.Stages {
		gates += s.N.NumGates()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range p.Stages {
			r := sta.Analyze(s.N.Compiled(), lib.ClockToQ, lib.Setup)
			if r.WNS(clk) > clk {
				b.Fatal("impossible slack")
			}
		}
	}
	b.ReportMetric(float64(gates), "gates")
}

// BenchmarkLogicSim measures the scalar zero-delay functional engine on
// the multiplier CPA stage (one vector per circuit walk).
func BenchmarkLogicSim(b *testing.B) {
	e := benchEnv(b)
	stage := e.F.FPU.Pipeline(fpu.DMul).Stages[3].N // s4-cpa
	sim := logicsim.New(stage.Compiled())
	src := prng.New(7)
	in := make([]bool, len(stage.Inputs()))
	for i := range in {
		in[i] = src.Bool()
	}
	start := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Run(in)
	}
	b.StopTimer()
	b.ReportMetric(float64(time.Since(start).Nanoseconds())/float64(b.N), "ns/vector")
}

// BenchmarkLogicSimWide measures the 64-wide bit-parallel engine on the
// same stage; ns/vector counts all 64 lanes of each walk.
func BenchmarkLogicSimWide(b *testing.B) {
	e := benchEnv(b)
	stage := e.F.FPU.Pipeline(fpu.DMul).Stages[3].N // s4-cpa
	sim := logicsim.NewWide(stage.Compiled())
	src := prng.New(7)
	in := make([]uint64, len(stage.Inputs()))
	for i := range in {
		in[i] = src.Uint64()
	}
	start := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Run(in)
	}
	b.StopTimer()
	b.ReportMetric(float64(time.Since(start).Nanoseconds())/float64(b.N*64), "ns/vector")
}

// BenchmarkDTAStreamFAdd measures the sharded DTA stream over 256 fp-add
// operand pairs on one worker (the characterization hot loop; the golden
// side runs 64 pairs per circuit walk).
func BenchmarkDTAStreamFAdd(b *testing.B) {
	e := benchEnv(b)
	src := prng.New(11)
	pairs := make([]dta.Pair, 256)
	for i := range pairs {
		pairs[i] = dta.Pair{A: src.Uint64(), B: src.Uint64()}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dta.AnalyzeStream(e.F.FPU, fpu.DAdd, e.F.Volt, vscale.VR20, false, pairs, 1)
	}
	b.ReportMetric(float64(len(pairs)), "dta-ops/op")
}

// BenchmarkGateLevelDTA measures full-pipeline dynamic timing analysis
// (both golden and undervolted instances, all stages) the way
// characterization consumes it: 64 consecutive instructions per batch,
// one 64-lane circuit walk per pipeline cycle. ns/op is one batch;
// dta-ops/op normalizes to instructions.
func BenchmarkGateLevelDTA(b *testing.B) {
	e := benchEnv(b)
	a := dta.New(e.F.FPU, fpu.DMul, e.F.Volt, vscale.VR20, false)
	src := prng.New(9)
	pairs := make([]dta.Pair, 64)
	recs := make([]dta.Record, len(pairs))
	for i := range pairs {
		pairs[i] = dta.Pair{A: src.Uint64(), B: src.Uint64()}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.AnalyzeBatch(pairs, recs)
	}
	b.ReportMetric(float64(len(pairs)), "dta-ops/op")
}

// BenchmarkGateLevelDTASingle measures single-instruction Analyze latency
// (a one-lane wide walk — the worst case for the wide engine; batching is
// the intended usage).
func BenchmarkGateLevelDTASingle(b *testing.B) {
	e := benchEnv(b)
	a := dta.New(e.F.FPU, fpu.DMul, e.F.Volt, vscale.VR20, false)
	src := prng.New(9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Analyze(dta.Pair{A: src.Uint64(), B: src.Uint64()})
	}
}

// BenchmarkCPUSimulator measures raw simulation speed on the sobel
// benchmark (instructions per second via instrs/op).
func BenchmarkCPUSimulator(b *testing.B) {
	w, err := workloads.ByName("sobel", workloads.Tiny)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var instr int64
	for i := 0; i < b.N; i++ {
		c := cpu.New(w.Program, cpu.Config{TrapFPInvalid: true})
		res := c.Run(1 << 40)
		instr += res.Instret
	}
	b.ReportMetric(float64(instr)/float64(b.N), "instrs/op")
}

// BenchmarkCPUWithInjection measures the injection overhead of a
// writeback hook relative to BenchmarkCPUSimulator.
func BenchmarkCPUWithInjection(b *testing.B) {
	w, err := workloads.ByName("sobel", workloads.Tiny)
	if err != nil {
		b.Fatal(err)
	}
	m := errmodel.BuildDA("VR20", 1, 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inj := m.NewInjector(prng.New(uint64(i)))
		c := cpu.New(w.Program, cpu.Config{Injector: inj})
		// Bounded budget: an injected error can livelock the program (the
		// campaign layer's Timeout class), so never run open-ended here.
		c.Run(2_000_000)
	}
}

// BenchmarkAssembler measures two-pass assembly of the largest generated
// workload source.
func BenchmarkAssembler(b *testing.B) {
	w, err := workloads.ByName("k-means", workloads.Tiny)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := isa.Assemble(w.Source); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFPUConstruction measures generating and calibrating the whole
// gate-level FPU.
func BenchmarkFPUConstruction(b *testing.B) {
	e := benchEnv(b)
	lib := e.F.Lib
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fpu.New(lib, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

var _ = campaign.Masked
