module teva

go 1.22
